//! The tree-walking interpreter: the "CPython" tier.
//!
//! Deliberately ordinary: boxed [`Value`]s, a `HashMap` name environment
//! per call frame, and recursive dispatch over the AST. The per-operation
//! costs (hash lookups, enum matching, allocation) are the same *kind* of
//! costs CPython pays per bytecode — which is exactly the overhead Fig. 3a
//! exposes on the right-hand side.

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::engine::NativeFn;
use crate::value::{arith, compare, index_get, index_set, intdiv, RuntimeError, VResult, Value};
use std::collections::HashMap;

/// Maximum call depth (recursion guard). Lower than the VM's limit because
/// each slowpy frame costs many Rust stack frames in the tree walker.
pub const MAX_DEPTH: usize = 200;

/// The interpreter, borrowing a program and a native table.
pub struct TreeInterp<'a> {
    program: &'a Program,
    natives: &'a HashMap<String, NativeFn>,
}

enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

impl<'a> TreeInterp<'a> {
    /// Create an interpreter for a program.
    pub fn new(program: &'a Program, natives: &'a HashMap<String, NativeFn>) -> Self {
        TreeInterp { program, natives }
    }

    /// Call a top-level function by name.
    pub fn call(&self, name: &str, args: &[Value]) -> VResult {
        self.call_depth(name, args, 0)
    }

    fn call_depth(&self, name: &str, args: &[Value], depth: usize) -> VResult {
        if depth >= MAX_DEPTH {
            return Err(RuntimeError(format!("call depth exceeded in {name:?}")));
        }
        let Some(f) = self.program.function(name) else {
            return Err(RuntimeError(format!("unknown function {name:?}")));
        };
        if f.params.len() != args.len() {
            return Err(RuntimeError(format!(
                "{name:?} expects {} arguments, got {}",
                f.params.len(),
                args.len()
            )));
        }
        // Function-level scoping (like Python): one environment per frame.
        let mut env: HashMap<String, Value> =
            f.params.iter().cloned().zip(args.iter().cloned()).collect();
        match self.exec_block(&f.body, &mut env, depth)? {
            Flow::Return(v) => Ok(v),
            Flow::Break | Flow::Continue => Err(RuntimeError("break/continue outside loop".into())),
            Flow::Normal => Ok(Value::Nil),
        }
    }

    fn exec_block(
        &self,
        stmts: &[Stmt],
        env: &mut HashMap<String, Value>,
        depth: usize,
    ) -> Result<Flow, RuntimeError> {
        for stmt in stmts {
            match self.exec_stmt(stmt, env, depth)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(
        &self,
        stmt: &Stmt,
        env: &mut HashMap<String, Value>,
        depth: usize,
    ) -> Result<Flow, RuntimeError> {
        match stmt {
            Stmt::Var(name, e) => {
                let v = self.eval(e, env, depth)?;
                env.insert(name.clone(), v);
                Ok(Flow::Normal)
            }
            Stmt::Assign(name, e) => {
                let v = self.eval(e, env, depth)?;
                match env.get_mut(name) {
                    Some(slot) => {
                        *slot = v;
                        Ok(Flow::Normal)
                    }
                    None => {
                        Err(RuntimeError(format!("assignment to undeclared variable {name:?}")))
                    }
                }
            }
            Stmt::IndexAssign(container, index, value) => {
                let c = self.eval(container, env, depth)?;
                let i = self.eval(index, env, depth)?;
                let v = self.eval(value, env, depth)?;
                index_set(&c, &i, v)?;
                Ok(Flow::Normal)
            }
            Stmt::If(cond, then, els) => {
                if self.eval(cond, env, depth)?.truthy() {
                    self.exec_block(then, env, depth)
                } else {
                    self.exec_block(els, env, depth)
                }
            }
            Stmt::While(cond, body) => {
                while self.eval(cond, env, depth)?.truthy() {
                    match self.exec_block(body, env, depth)? {
                        Flow::Normal | Flow::Continue => {}
                        Flow::Break => break,
                        ret @ Flow::Return(_) => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, env, depth)?,
                    None => Value::Nil,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Expr(e) => {
                self.eval(e, env, depth)?;
                Ok(Flow::Normal)
            }
        }
    }

    fn eval(&self, expr: &Expr, env: &mut HashMap<String, Value>, depth: usize) -> VResult {
        match expr {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Str(s) => Ok(Value::str(s)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Nil => Ok(Value::Nil),
            Expr::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| RuntimeError(format!("undefined variable {name:?}"))),
            Expr::Neg(e) => match self.eval(e, env, depth)? {
                Value::Int(i) => Ok(Value::Int(i.wrapping_neg())),
                Value::Float(f) => Ok(Value::Float(-f)),
                v => Err(RuntimeError(format!("cannot negate {}", v.type_name()))),
            },
            Expr::Not(e) => Ok(Value::Bool(!self.eval(e, env, depth)?.truthy())),
            Expr::And(a, b) => {
                if !self.eval(a, env, depth)?.truthy() {
                    Ok(Value::Bool(false))
                } else {
                    Ok(Value::Bool(self.eval(b, env, depth)?.truthy()))
                }
            }
            Expr::Or(a, b) => {
                if self.eval(a, env, depth)?.truthy() {
                    Ok(Value::Bool(true))
                } else {
                    Ok(Value::Bool(self.eval(b, env, depth)?.truthy()))
                }
            }
            Expr::Bin(op, a, b) => {
                let x = self.eval(a, env, depth)?;
                let y = self.eval(b, env, depth)?;
                match op {
                    BinOp::Add => arith('+', &x, &y),
                    BinOp::Sub => arith('-', &x, &y),
                    BinOp::Mul => arith('*', &x, &y),
                    BinOp::Div => arith('/', &x, &y),
                    BinOp::Mod => arith('%', &x, &y),
                    BinOp::IntDiv => intdiv(&x, &y),
                    BinOp::Eq => Ok(Value::Bool(x == y)),
                    BinOp::Ne => Ok(Value::Bool(x != y)),
                    BinOp::Lt => compare("<", &x, &y),
                    BinOp::Le => compare("<=", &x, &y),
                    BinOp::Gt => compare(">", &x, &y),
                    BinOp::Ge => compare(">=", &x, &y),
                }
            }
            Expr::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for e in items {
                    out.push(self.eval(e, env, depth)?);
                }
                Ok(Value::list(out))
            }
            Expr::Index(container, index) => {
                let c = self.eval(container, env, depth)?;
                let i = self.eval(index, env, depth)?;
                index_get(&c, &i)
            }
            Expr::Call(name, arg_exprs) => {
                let mut args = Vec::with_capacity(arg_exprs.len());
                for e in arg_exprs {
                    args.push(self.eval(e, env, depth)?);
                }
                if self.program.function(name).is_some() {
                    self.call_depth(name, &args, depth + 1)
                } else if let Some(native) = self.natives.get(name) {
                    native(&args)
                } else {
                    Err(RuntimeError(format!("unknown function {name:?}")))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str, func: &str, args: &[Value]) -> VResult {
        let prog = parse(src).unwrap();
        let natives = HashMap::new();
        TreeInterp::new(&prog, &natives).call(func, args)
    }

    #[test]
    fn arithmetic_and_locals() {
        let v = run(
            "fn f(a, b) { var c = a * b; return c + 1; }",
            "f",
            &[Value::Int(3), Value::Int(4)],
        );
        assert_eq!(v.unwrap(), Value::Int(13));
    }

    #[test]
    fn while_with_break_continue() {
        let src = "fn f(n) {\n var s = 0; var i = 0;\n while (true) {\n  i = i + 1;\n  if (i > n) { break; }\n  if (i % 2 == 0) { continue; }\n  s = s + i;\n }\n return s;\n}";
        assert_eq!(run(src, "f", &[Value::Int(10)]).unwrap(), Value::Int(25)); // 1+3+5+7+9
    }

    #[test]
    fn recursion_fib() {
        let src = "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }";
        assert_eq!(run(src, "fib", &[Value::Int(15)]).unwrap(), Value::Int(610));
    }

    #[test]
    fn function_level_scoping() {
        // A var declared inside an if-branch is visible after it (Python
        // semantics, shared with the VM).
        let src = "fn f(x) { if (x > 0) { var y = 10; } else { var y = 20; } return y; }";
        assert_eq!(run(src, "f", &[Value::Int(1)]).unwrap(), Value::Int(10));
        assert_eq!(run(src, "f", &[Value::Int(-1)]).unwrap(), Value::Int(20));
    }

    #[test]
    fn missing_return_yields_nil() {
        assert_eq!(run("fn f() { var x = 1; }", "f", &[]).unwrap(), Value::Nil);
    }

    #[test]
    fn runtime_errors() {
        assert!(run("fn f() { return g(); }", "f", &[]).is_err()); // unknown fn
        assert!(run("fn f() { return x; }", "f", &[]).is_err()); // undefined var
        assert!(run("fn f() { x = 1; return x; }", "f", &[]).is_err()); // undeclared assign
        assert!(run("fn f(a) { return a; }", "f", &[]).is_err()); // arity
        assert!(run("fn f() { return 1 + \"s\"; }", "f", &[]).is_err()); // types
    }

    #[test]
    fn infinite_recursion_is_caught() {
        let r = run("fn f() { return f(); }", "f", &[]);
        assert!(r.unwrap_err().0.contains("depth"));
    }

    #[test]
    fn lists_index_assign_and_alias() {
        let src = "fn f() {\n var a = [1, 2, 3];\n var b = a;\n a[1] = 20;\n b[2] = a[1] + 10;\n return a[0] + a[1] + a[2];\n}";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::Int(1 + 20 + 30));
    }

    #[test]
    fn list_index_errors() {
        assert!(run("fn f() { return [1][2]; }", "f", &[]).is_err());
        assert!(run("fn f() { return 3[0]; }", "f", &[]).is_err());
        assert!(run("fn f() { var a = [1]; a[\"k\"] = 2; }", "f", &[]).is_err());
    }

    #[test]
    fn short_circuit_avoids_evaluation() {
        // The second operand would error; short-circuit must skip it.
        let src = "fn f() { return false and g(); }";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::Bool(false));
        let src = "fn f() { return true or g(); }";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::Bool(true));
    }
}
