//! Recursive-descent parser.

use crate::ast::{BinOp, Expr, FnDef, Program, Stmt};
use crate::lexer::{lex, Tok, Token};
use std::fmt;

/// A parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<crate::lexer::LexError> for ParseError {
    fn from(e: crate::lexer::LexError) -> Self {
        ParseError { msg: e.msg, line: e.line }
    }
}

/// Parse source text into a [`Program`].
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while p.peek() != &Tok::Eof {
        functions.push(p.fndef()?);
    }
    // Reject duplicate function names early.
    for (i, f) in functions.iter().enumerate() {
        if functions[..i].iter().any(|g| g.name == f.name) {
            return Err(ParseError {
                msg: format!("duplicate function {:?}", f.name),
                line: f.line,
            });
        }
    }
    Ok(Program { functions })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].kind
    }

    fn line(&self) -> u32 {
        self.tokens[self.pos].line
    }

    fn advance(&mut self) -> Tok {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { msg: msg.into(), line: self.line() })
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if self.peek() == &tok {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected {what}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(name)
            }
            other => self.err(format!("expected {what}, found {other:?}")),
        }
    }

    fn fndef(&mut self) -> Result<FnDef, ParseError> {
        let line = self.line();
        self.expect(Tok::Fn, "'fn'")?;
        let name = self.ident("function name")?;
        self.expect(Tok::LParen, "'('")?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                let p = self.ident("parameter name")?;
                if params.contains(&p) {
                    return self.err(format!("duplicate parameter {p:?}"));
                }
                params.push(p);
                if self.peek() == &Tok::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "')'")?;
        let body = self.block()?;
        Ok(FnDef { name, params, body, line })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace, "'{'")?;
        let mut stmts = Vec::new();
        while self.peek() != &Tok::RBrace {
            if self.peek() == &Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.advance(); // consume '}'
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Var => {
                self.advance();
                let name = self.ident("variable name")?;
                self.expect(Tok::Assign, "'='")?;
                let e = self.expr()?;
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Var(name, e))
            }
            Tok::If => {
                self.advance();
                self.if_tail()
            }
            Tok::While => {
                self.advance();
                self.expect(Tok::LParen, "'('")?;
                let cond = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Tok::Return => {
                self.advance();
                let e = if self.peek() == &Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Return(e))
            }
            Tok::Break => {
                self.advance();
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Break)
            }
            Tok::Continue => {
                self.advance();
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Continue)
            }
            Tok::Ident(name) if self.tokens[self.pos + 1].kind == Tok::Assign => {
                self.advance();
                self.advance();
                let e = self.expr()?;
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Assign(name, e))
            }
            _ => {
                let e = self.expr()?;
                if self.peek() == &Tok::Assign {
                    // Index assignment: the parsed target must be an index
                    // expression (`a[i] = v;`, possibly chained `a[i][j]`).
                    self.advance();
                    let Expr::Index(container, index) = e else {
                        return self.err("invalid assignment target");
                    };
                    let value = self.expr()?;
                    self.expect(Tok::Semi, "';'")?;
                    return Ok(Stmt::IndexAssign(*container, *index, value));
                }
                self.expect(Tok::Semi, "';'")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn if_tail(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::LParen, "'('")?;
        let cond = self.expr()?;
        self.expect(Tok::RParen, "')'")?;
        let then = self.block()?;
        let els = if self.peek() == &Tok::Else {
            self.advance();
            if self.peek() == &Tok::If {
                self.advance();
                vec![self.if_tail()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If(cond, then, els))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::Or {
            self.advance();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.peek() == &Tok::And {
            self.advance();
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == &Tok::Not {
            self.advance();
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.equality()
        }
    }

    fn equality(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.comparison()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                _ => break,
            };
            self.advance();
            let rhs = self.comparison()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.advance();
            let rhs = self.term()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.factor()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::SlashSlash => BinOp::IntDiv,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == &Tok::Minus {
            self.advance();
            Ok(Expr::Neg(Box::new(self.unary()?)))
        } else {
            self.postfix()
        }
    }

    /// A primary expression followed by any number of `[index]` suffixes.
    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        while self.peek() == &Tok::LBracket {
            self.advance();
            let idx = self.expr()?;
            self.expect(Tok::RBracket, "']'")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.advance();
                Ok(Expr::Int(v))
            }
            Tok::Float(v) => {
                self.advance();
                Ok(Expr::Float(v))
            }
            Tok::Str(s) => {
                self.advance();
                Ok(Expr::Str(s))
            }
            Tok::True => {
                self.advance();
                Ok(Expr::Bool(true))
            }
            Tok::False => {
                self.advance();
                Ok(Expr::Bool(false))
            }
            Tok::Nil => {
                self.advance();
                Ok(Expr::Nil)
            }
            Tok::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::LBracket => {
                self.advance();
                let mut items = Vec::new();
                if self.peek() != &Tok::RBracket {
                    loop {
                        items.push(self.expr()?);
                        if self.peek() == &Tok::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket, "']'")?;
                Ok(Expr::List(items))
            }
            Tok::Ident(name) => {
                self.advance();
                if self.peek() == &Tok::LParen {
                    self.advance();
                    let mut args = Vec::new();
                    if self.peek() != &Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if self.peek() == &Tok::Comma {
                                self.advance();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "')'")?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.err(format!("unexpected token {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_function_with_control_flow() {
        let p = parse(
            "fn f(n) {\n  var s = 0;\n  var i = 0;\n  while (i < n) {\n    if (i % 2 == 0) { s = s + i; } else { s = s - 1; }\n    i = i + 1;\n  }\n  return s;\n}",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params, vec!["n"]);
        assert_eq!(f.body.len(), 4);
    }

    #[test]
    fn precedence_mul_over_add() {
        let p = parse("fn f() { return 1 + 2 * 3; }").unwrap();
        let Stmt::Return(Some(Expr::Bin(BinOp::Add, _, rhs))) = &p.functions[0].body[0] else {
            panic!("wrong shape");
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn precedence_comparison_over_and() {
        let p = parse("fn f(a, b) { return a < 1 and b > 2; }").unwrap();
        let Stmt::Return(Some(Expr::And(l, r))) = &p.functions[0].body[0] else {
            panic!("wrong shape");
        };
        assert!(matches!(**l, Expr::Bin(BinOp::Lt, _, _)));
        assert!(matches!(**r, Expr::Bin(BinOp::Gt, _, _)));
    }

    #[test]
    fn else_if_chains() {
        let p = parse("fn f(x) { if (x < 0) { return 0; } else if (x < 10) { return 1; } else { return 2; } }")
            .unwrap();
        let Stmt::If(_, _, els) = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(els[0], Stmt::If(_, _, _)));
    }

    #[test]
    fn calls_with_args() {
        let p = parse("fn f() { return g(1, 2.5, \"x\"); }").unwrap();
        let Stmt::Return(Some(Expr::Call(name, args))) = &p.functions[0].body[0] else { panic!() };
        assert_eq!(name, "g");
        assert_eq!(args.len(), 3);
    }

    #[test]
    fn unary_minus_binds_tightly() {
        let p = parse("fn f(x) { return -x * 2; }").unwrap();
        let Stmt::Return(Some(Expr::Bin(BinOp::Mul, l, _))) = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(**l, Expr::Neg(_)));
    }

    #[test]
    fn list_literals_and_indexing() {
        let p = parse("fn f(a) { return [1, 2.5, [true]][a][0]; }").unwrap();
        let Stmt::Return(Some(Expr::Index(inner, zero))) = &p.functions[0].body[0] else {
            panic!("outer index missing");
        };
        assert_eq!(**zero, Expr::Int(0));
        assert!(matches!(**inner, Expr::Index(_, _)));
    }

    #[test]
    fn index_assignment_parses() {
        let p = parse("fn f(a, i) { a[i + 1] = 9; }").unwrap();
        let Stmt::IndexAssign(c, i, v) = &p.functions[0].body[0] else { panic!() };
        assert_eq!(*c, Expr::Var("a".into()));
        assert!(matches!(i, Expr::Bin(_, _, _)));
        assert_eq!(*v, Expr::Int(9));
    }

    #[test]
    fn chained_index_assignment_parses() {
        let p = parse("fn f(a) { a[0][1] = 2; }").unwrap();
        let Stmt::IndexAssign(c, _, _) = &p.functions[0].body[0] else { panic!() };
        assert!(matches!(c, Expr::Index(_, _)));
    }

    #[test]
    fn invalid_assignment_targets_rejected() {
        assert!(parse("fn f() { 1 + 2 = 3; }").is_err());
        assert!(parse("fn f() { g() = 3; }").is_err());
        assert!(parse("fn f(a) { [1][0; }").is_err());
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("fn f( { }").is_err());
        assert!(parse("fn f() { var = 3; }").is_err());
        assert!(parse("fn f() { return 1 }").is_err()); // missing semicolon
        assert!(parse("fn f() { ").is_err());
        assert!(parse("f() {}").is_err());
        assert!(parse("fn f(a, a) {}").is_err()); // dup param
        assert!(parse("fn f() {} fn f() {}").is_err()); // dup function
    }

    #[test]
    fn empty_program_is_ok() {
        assert!(parse("").unwrap().functions.is_empty());
    }
}
