//! Abstract syntax tree.

/// A parsed program: a list of top-level functions.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Function definitions, in source order.
    pub functions: Vec<FnDef>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&FnDef> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the `fn` keyword.
    pub line: u32,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var name = expr;`
    Var(String, Expr),
    /// `name = expr;`
    Assign(String, Expr),
    /// `container[index] = expr;`
    IndexAssign(Expr, Expr, Expr),
    /// `if (cond) { .. } else { .. }` — else branch may be empty.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `return expr?;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// Bare expression statement (a call, usually).
    Expr(Expr),
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    IntDiv,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// An expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// `nil`.
    Nil,
    /// Variable reference.
    Var(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Short-circuit `and`.
    And(Box<Expr>, Box<Expr>),
    /// Short-circuit `or`.
    Or(Box<Expr>, Box<Expr>),
    /// `not expr`.
    Not(Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Function call (user or native, resolved at run/compile time).
    Call(String, Vec<Expr>),
    /// List literal.
    List(Vec<Expr>),
    /// `container[index]`.
    Index(Box<Expr>, Box<Expr>),
}
