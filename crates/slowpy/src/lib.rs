//! slowpy: a small dynamically-typed language with two execution engines.
//!
//! Fig. 3 of the paper compares the same Halton-sequence π kernel across
//! CPython, PyPy, Java, and C-via-ctypes. We cannot ship four language
//! runtimes, but we can reproduce the *mechanism* behind the gaps —
//! per-operation interpreter dispatch on boxed dynamic values — by
//! implementing a little language twice:
//!
//! * [`tree::TreeInterp`] — a naive AST walker with string-keyed
//!   environments: the "CPython" tier (boxed values, dict lookups,
//!   recursive dispatch),
//! * [`vm::Vm`] — a compiled bytecode stack machine with slot-resolved
//!   locals: the "PyPy" tier (same semantics, far less dispatch overhead),
//! * native Rust functions registered through [`engine::Engine::register`]
//!   — the "C via ctypes" tier: a slowpy program calls straight into
//!   compiled code, exactly how the paper swapped its inner loop.
//!
//! The language has ints/floats with Python-style coercion, strings,
//! booleans, and mutable lists with reference semantics (negative indexing
//! included); functions, `while`/`if`, and a small stdlib (`sqrt`, `len`,
//! `push`, …). Both engines must agree on every program — the unit suite,
//! a differential fuzzer over generated programs, and the `slowpy_tiers`
//! bench enforce semantics and measure the tier gaps.

pub mod ast;
pub mod bytecode;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod tree;
pub mod value;
pub mod vm;

pub use engine::Engine;
pub use parser::parse;
pub use value::{RuntimeError, Value};
