//! The bytecode virtual machine: the "PyPy" tier.

use crate::bytecode::{Module, Op};
use crate::engine::NativeFn;
use crate::value::{arith, compare, index_get, index_set, intdiv, RuntimeError, VResult, Value};
use std::collections::HashMap;

/// Maximum call depth (matches the tree interpreter's guard).
pub const MAX_FRAMES: usize = 1000;

struct Frame {
    func: usize,
    ip: usize,
    base: usize,
}

/// The VM, borrowing a compiled module and the engine's native table.
pub struct Vm<'a> {
    module: &'a Module,
    natives: Vec<Option<&'a NativeFn>>,
}

impl<'a> Vm<'a> {
    /// Create a VM, resolving the module's native references against the
    /// engine's current table.
    pub fn new(module: &'a Module, natives: &'a HashMap<String, NativeFn>) -> Self {
        let natives = module.native_names.iter().map(|n| natives.get(n)).collect();
        Vm { module, natives }
    }

    /// Call a compiled function by name.
    pub fn call(&self, name: &str, args: &[Value]) -> VResult {
        let Some(func) = self.module.function_index(name) else {
            return Err(RuntimeError(format!("unknown function {name:?}")));
        };
        let f = &self.module.functions[func];
        if f.n_params != args.len() {
            return Err(RuntimeError(format!(
                "{name:?} expects {} arguments, got {}",
                f.n_params,
                args.len()
            )));
        }
        let mut stack: Vec<Value> = args.to_vec();
        stack.resize(f.n_locals, Value::Nil);
        let mut frames = vec![Frame { func, ip: 0, base: 0 }];

        loop {
            let frame = frames.last_mut().expect("at least one frame");
            let code = &self.module.functions[frame.func].code;
            let op = code[frame.ip];
            frame.ip += 1;
            match op {
                Op::Const(k) => stack.push(self.module.consts[k as usize].clone()),
                Op::Load(slot) => {
                    let v = stack[frame.base + slot as usize].clone();
                    stack.push(v);
                }
                Op::Store(slot) => {
                    let v = stack.pop().expect("store needs a value");
                    stack[frame.base + slot as usize] = v;
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::IntDiv | Op::Mod => {
                    let b = stack.pop().expect("binary rhs");
                    let a = stack.pop().expect("binary lhs");
                    let r = match op {
                        Op::Add => arith('+', &a, &b),
                        Op::Sub => arith('-', &a, &b),
                        Op::Mul => arith('*', &a, &b),
                        Op::Div => arith('/', &a, &b),
                        Op::Mod => arith('%', &a, &b),
                        Op::IntDiv => intdiv(&a, &b),
                        _ => unreachable!(),
                    }?;
                    stack.push(r);
                }
                Op::Eq | Op::Ne => {
                    let b = stack.pop().expect("eq rhs");
                    let a = stack.pop().expect("eq lhs");
                    let eq = a == b;
                    stack.push(Value::Bool(if matches!(op, Op::Eq) { eq } else { !eq }));
                }
                Op::Lt | Op::Le | Op::Gt | Op::Ge => {
                    let b = stack.pop().expect("cmp rhs");
                    let a = stack.pop().expect("cmp lhs");
                    let s = match op {
                        Op::Lt => "<",
                        Op::Le => "<=",
                        Op::Gt => ">",
                        _ => ">=",
                    };
                    stack.push(compare(s, &a, &b)?);
                }
                Op::Neg => {
                    let v = stack.pop().expect("neg operand");
                    stack.push(match v {
                        Value::Int(i) => Value::Int(i.wrapping_neg()),
                        Value::Float(f) => Value::Float(-f),
                        other => {
                            return Err(RuntimeError(format!(
                                "cannot negate {}",
                                other.type_name()
                            )))
                        }
                    });
                }
                Op::Not => {
                    let v = stack.pop().expect("not operand");
                    stack.push(Value::Bool(!v.truthy()));
                }
                Op::Jump(t) => frame.ip = t as usize,
                Op::JumpIfFalse(t) => {
                    if !stack.pop().expect("condition").truthy() {
                        frame.ip = t as usize;
                    }
                }
                Op::JumpIfTrue(t) => {
                    if stack.pop().expect("condition").truthy() {
                        frame.ip = t as usize;
                    }
                }
                Op::Pop => {
                    stack.pop().expect("pop needs a value");
                }
                Op::Call(fidx, argc) => {
                    if frames.len() >= MAX_FRAMES {
                        return Err(RuntimeError("call depth exceeded".into()));
                    }
                    let callee = &self.module.functions[fidx as usize];
                    let base = stack.len() - argc as usize;
                    stack.resize(base + callee.n_locals, Value::Nil);
                    frames.push(Frame { func: fidx as usize, ip: 0, base });
                }
                Op::CallNative(nidx, argc) => {
                    let Some(native) = self.natives[nidx as usize] else {
                        return Err(RuntimeError(format!(
                            "native {:?} not registered",
                            self.module.native_names[nidx as usize]
                        )));
                    };
                    let base = stack.len() - argc as usize;
                    let r = native(&stack[base..])?;
                    stack.truncate(base);
                    stack.push(r);
                }
                Op::NewList(n) => {
                    let base = stack.len() - n as usize;
                    let items = stack.split_off(base);
                    stack.push(Value::list(items));
                }
                Op::IndexGet => {
                    let i = stack.pop().expect("index");
                    let c = stack.pop().expect("container");
                    stack.push(index_get(&c, &i)?);
                }
                Op::IndexSet => {
                    let v = stack.pop().expect("value");
                    let i = stack.pop().expect("index");
                    let c = stack.pop().expect("container");
                    index_set(&c, &i, v)?;
                }
                Op::Return | Op::ReturnNil => {
                    let ret = if matches!(op, Op::Return) {
                        stack.pop().expect("return value")
                    } else {
                        Value::Nil
                    };
                    let done_base = frames.pop().expect("current frame").base;
                    stack.truncate(done_base);
                    if frames.is_empty() {
                        return Ok(ret);
                    }
                    stack.push(ret);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::compile;
    use crate::parser::parse;

    fn run(src: &str, func: &str, args: &[Value]) -> VResult {
        let prog = parse(src).unwrap();
        let natives = HashMap::new();
        let module = compile(&prog, &natives)?;
        Vm::new(&module, &natives).call(func, args)
    }

    #[test]
    fn arithmetic_and_calls() {
        let src = "fn sq(x) { return x * x; } fn f(a) { return sq(a) + sq(a + 1); }";
        assert_eq!(run(src, "f", &[Value::Int(3)]).unwrap(), Value::Int(25));
    }

    #[test]
    fn loops_with_break_continue() {
        let src = "fn f(n) {\n var s = 0; var i = 0;\n while (true) {\n  i = i + 1;\n  if (i > n) { break; }\n  if (i % 2 == 0) { continue; }\n  s = s + i;\n }\n return s;\n}";
        assert_eq!(run(src, "f", &[Value::Int(10)]).unwrap(), Value::Int(25));
    }

    #[test]
    fn recursion_fib() {
        let src = "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }";
        assert_eq!(run(src, "fib", &[Value::Int(15)]).unwrap(), Value::Int(610));
    }

    #[test]
    fn deep_recursion_guard() {
        let r = run("fn f(n) { return f(n + 1); }", "f", &[Value::Int(0)]);
        assert!(r.unwrap_err().0.contains("depth"));
    }

    #[test]
    fn nested_calls_keep_stack_discipline() {
        let src = "fn g(a, b) { return a - b; } fn f() { return g(g(10, 4), g(3, 1)); }";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::Int(4));
    }

    #[test]
    fn and_or_produce_bools() {
        let src = "fn f(a, b) { return a and b; } fn g(a, b) { return a or b; }";
        assert_eq!(run(src, "f", &[Value::Int(1), Value::Int(2)]).unwrap(), Value::Bool(true));
        assert_eq!(run(src, "g", &[Value::Bool(false), Value::Nil]).unwrap(), Value::Bool(false));
    }

    #[test]
    fn lists_work_on_the_vm() {
        let src = "fn f() {\n var a = [5, 6];\n var b = a;\n b[0] = 50;\n return a[0] + a[-1];\n}";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::Int(56));
    }

    #[test]
    fn nested_list_literals() {
        let src = "fn f() { return [[1, 2], [3]][0][1]; }";
        assert_eq!(run(src, "f", &[]).unwrap(), Value::Int(2));
    }

    #[test]
    fn vm_index_errors() {
        assert!(run("fn f() { return [1][5]; }", "f", &[]).is_err());
        assert!(run("fn f() { var a = 1; a[0] = 2; }", "f", &[]).is_err());
    }

    #[test]
    fn arity_mismatch_at_entry() {
        assert!(run("fn f(a) { return a; }", "f", &[]).is_err());
    }
}
