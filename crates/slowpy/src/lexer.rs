//! Tokenizer.

use std::fmt;

/// A token with its source line (for error messages).
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    // literals & identifiers
    Int(i64),
    Float(f64),
    Str(String),
    Ident(String),
    // keywords
    Fn,
    Var,
    If,
    Else,
    While,
    Return,
    Break,
    Continue,
    True,
    False,
    Nil,
    And,
    Or,
    Not,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    SlashSlash,
    Percent,
    Assign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

/// A lexical error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Description.
    pub msg: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

/// Tokenize source text.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    macro_rules! push {
        ($kind:expr) => {
            out.push(Token { kind: $kind, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                push!(Tok::LParen);
                i += 1;
            }
            b')' => {
                push!(Tok::RParen);
                i += 1;
            }
            b'{' => {
                push!(Tok::LBrace);
                i += 1;
            }
            b'}' => {
                push!(Tok::RBrace);
                i += 1;
            }
            b'[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            b']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            b',' => {
                push!(Tok::Comma);
                i += 1;
            }
            b';' => {
                push!(Tok::Semi);
                i += 1;
            }
            b'+' => {
                push!(Tok::Plus);
                i += 1;
            }
            b'-' => {
                push!(Tok::Minus);
                i += 1;
            }
            b'*' => {
                push!(Tok::Star);
                i += 1;
            }
            b'%' => {
                push!(Tok::Percent);
                i += 1;
            }
            b'/' => {
                if bytes.get(i + 1) == Some(&b'/') {
                    push!(Tok::SlashSlash);
                    i += 2;
                } else {
                    push!(Tok::Slash);
                    i += 1;
                }
            }
            b'=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Eq);
                    i += 2;
                } else {
                    push!(Tok::Assign);
                    i += 1;
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ne);
                    i += 2;
                } else {
                    return Err(LexError { msg: "unexpected '!' (use 'not')".into(), line });
                }
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Le);
                    i += 2;
                } else {
                    push!(Tok::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Ge);
                    i += 2;
                } else {
                    push!(Tok::Gt);
                    i += 1;
                }
            }
            b'"' => {
                let start_line = line;
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(LexError {
                            msg: "unterminated string".into(),
                            line: start_line,
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\\' => {
                            let esc = bytes
                                .get(i + 1)
                                .ok_or(LexError { msg: "dangling escape".into(), line })?;
                            s.push(match esc {
                                b'n' => '\n',
                                b't' => '\t',
                                b'"' => '"',
                                b'\\' => '\\',
                                other => {
                                    return Err(LexError {
                                        msg: format!("unknown escape \\{}", *other as char),
                                        line,
                                    })
                                }
                            });
                            i += 2;
                        }
                        b'\n' => {
                            return Err(LexError {
                                msg: "newline in string".into(),
                                line: start_line,
                            })
                        }
                        _ => {
                            // copy the full UTF-8 character
                            let ch_len = utf8_len(bytes[i]);
                            s.push_str(
                                std::str::from_utf8(&bytes[i..i + ch_len])
                                    .map_err(|_| LexError { msg: "invalid utf-8".into(), line })?,
                            );
                            i += ch_len;
                        }
                    }
                }
                push!(Tok::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i < bytes.len()
                    && bytes[i] == b'.'
                    && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
                {
                    is_float = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii digits");
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|e| LexError { msg: format!("bad float {text}: {e}"), line })?;
                    push!(Tok::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|e| LexError { msg: format!("bad int {text}: {e}"), line })?;
                    push!(Tok::Int(v));
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = std::str::from_utf8(&bytes[start..i]).expect("ascii word");
                push!(match word {
                    "fn" => Tok::Fn,
                    "var" => Tok::Var,
                    "if" => Tok::If,
                    "else" => Tok::Else,
                    "while" => Tok::While,
                    "return" => Tok::Return,
                    "break" => Tok::Break,
                    "continue" => Tok::Continue,
                    "true" => Tok::True,
                    "false" => Tok::False,
                    "nil" => Tok::Nil,
                    "and" => Tok::And,
                    "or" => Tok::Or,
                    "not" => Tok::Not,
                    _ => Tok::Ident(word.to_owned()),
                });
            }
            other => {
                return Err(LexError {
                    msg: format!("unexpected character {:?}", other as char),
                    line,
                })
            }
        }
    }
    out.push(Token { kind: Tok::Eof, line });
    Ok(out)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_function() {
        let ks = kinds("fn add(a, b) { return a + b; }");
        assert_eq!(
            ks,
            vec![
                Tok::Fn,
                Tok::Ident("add".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::LBrace,
                Tok::Return,
                Tok::Ident("a".into()),
                Tok::Plus,
                Tok::Ident("b".into()),
                Tok::Semi,
                Tok::RBrace,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn numbers_int_and_float() {
        assert_eq!(kinds("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(kinds("3.5"), vec![Tok::Float(3.5), Tok::Eof]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        assert_eq!(kinds("2.5e-1"), vec![Tok::Float(0.25), Tok::Eof]);
        // A dot not followed by a digit is not part of the number.
        assert!(lex("1.").is_err());
    }

    #[test]
    fn operators_maximal_munch() {
        assert_eq!(
            kinds("<= < == = != // /"),
            vec![
                Tok::Le,
                Tok::Lt,
                Tok::Eq,
                Tok::Assign,
                Tok::Ne,
                Tok::SlashSlash,
                Tok::Slash,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds(r#""a\nb\"c\\""#), vec![Tok::Str("a\nb\"c\\".into()), Tok::Eof]);
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("var x = 1; # comment\nvar y = 2;").unwrap();
        let y_line = toks.iter().find(|t| t.kind == Tok::Ident("y".into())).unwrap().line;
        assert_eq!(y_line, 2);
    }

    #[test]
    fn error_cases() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("@").is_err());
        assert!(lex("!x").is_err());
        assert!(lex("\"bad\\q\"").is_err());
    }

    #[test]
    fn brackets_tokenize() {
        assert_eq!(
            kinds("[1, 2][0]"),
            vec![
                Tok::LBracket,
                Tok::Int(1),
                Tok::Comma,
                Tok::Int(2),
                Tok::RBracket,
                Tok::LBracket,
                Tok::Int(0),
                Tok::RBracket,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("\"héllo\""), vec![Tok::Str("héllo".into()), Tok::Eof]);
    }
}
