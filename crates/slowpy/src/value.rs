//! Dynamic values and runtime errors.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A slowpy runtime value. Numbers are either `Int` or `Float` with Python-
/// style coercion: mixed arithmetic promotes to `Float`, `/` always
/// produces `Float`.
#[derive(Clone, Debug)]
pub enum Value {
    /// The absent value.
    Nil,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable string.
    Str(Rc<str>),
    /// Mutable list with reference semantics (like Python: assignment
    /// aliases, mutation is visible through every alias).
    List(Rc<RefCell<Vec<Value>>>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(Rc::from(s))
    }

    /// Construct a list value.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(RefCell::new(items)))
    }

    /// Truthiness: `nil` and `false` are false, everything else true
    /// (numbers are truthy regardless of value — simpler than Python, and
    /// explicit comparisons read better in kernels).
    pub fn truthy(&self) -> bool {
        !matches!(self, Value::Nil | Value::Bool(false))
    }

    /// Numeric view, if any.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (exact).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Nil => "nil",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::List(_) => "list",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Nil => write!(f, "nil"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.borrow().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Nil, Value::Nil) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            // Numeric cross-type equality, like Python.
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b,
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::List(a), Value::List(b)) => {
                // Element-wise deep equality; identical Rcs shortcut first
                // (also makes self-referential lists terminate).
                Rc::ptr_eq(a, b) || *a.borrow() == *b.borrow()
            }
            _ => false,
        }
    }
}

/// A runtime failure with a message (and no unwinding across the host).
#[derive(Clone, Debug, PartialEq)]
pub struct RuntimeError(pub String);

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.0)
    }
}

impl std::error::Error for RuntimeError {}

/// Shorthand result.
pub type VResult = Result<Value, RuntimeError>;

pub(crate) fn type_error(op: &str, a: &Value, b: &Value) -> RuntimeError {
    RuntimeError(format!(
        "unsupported operand types for {op}: {} and {}",
        a.type_name(),
        b.type_name()
    ))
}

/// Binary arithmetic with Python-style promotion.
pub fn arith(op: char, a: &Value, b: &Value) -> VResult {
    use Value::*;
    match (op, a, b) {
        ('+', Str(x), Str(y)) => {
            let mut s = String::with_capacity(x.len() + y.len());
            s.push_str(x);
            s.push_str(y);
            Ok(Value::Str(Rc::from(s.as_str())))
        }
        ('+', Int(x), Int(y)) => Ok(Int(x.wrapping_add(*y))),
        ('-', Int(x), Int(y)) => Ok(Int(x.wrapping_sub(*y))),
        ('*', Int(x), Int(y)) => Ok(Int(x.wrapping_mul(*y))),
        ('%', Int(x), Int(y)) => {
            if *y == 0 {
                Err(RuntimeError("integer modulo by zero".into()))
            } else {
                Ok(Int(x.rem_euclid(*y)))
            }
        }
        ('/', _, _) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Float(x / y)),
            _ => Err(type_error("/", a, b)),
        },
        (_, _, _) => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Float(match op {
                '+' => x + y,
                '-' => x - y,
                '*' => x * y,
                '%' => x.rem_euclid(y),
                _ => return Err(RuntimeError(format!("unknown operator {op}"))),
            })),
            _ => Err(type_error(&op.to_string(), a, b)),
        },
    }
}

/// Integer division (`//`), floor semantics.
pub fn intdiv(a: &Value, b: &Value) -> VResult {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => {
            if *y == 0 {
                Err(RuntimeError("integer division by zero".into()))
            } else {
                Ok(Value::Int(x.div_euclid(*y)))
            }
        }
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(Value::Float((x / y).floor())),
            _ => Err(type_error("//", a, b)),
        },
    }
}

/// Ordered comparison; errors on non-comparable types.
pub fn compare(op: &str, a: &Value, b: &Value) -> VResult {
    let r = match (a, b) {
        (Value::Str(x), Value::Str(y)) => x.as_ref().partial_cmp(y.as_ref()),
        _ => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => x.partial_cmp(&y),
            _ => return Err(type_error(op, a, b)),
        },
    };
    let Some(ord) = r else {
        // NaN comparisons are false, like IEEE/Python.
        return Ok(Value::Bool(false));
    };
    Ok(Value::Bool(match op {
        "<" => ord.is_lt(),
        "<=" => ord.is_le(),
        ">" => ord.is_gt(),
        ">=" => ord.is_ge(),
        _ => return Err(RuntimeError(format!("unknown comparison {op}"))),
    }))
}

/// Resolve a (possibly negative, Python-style) index against a length.
pub fn resolve_index(idx: i64, len: usize) -> Result<usize, RuntimeError> {
    let len_i = len as i64;
    let resolved = if idx < 0 { idx + len_i } else { idx };
    if (0..len_i).contains(&resolved) {
        Ok(resolved as usize)
    } else {
        Err(RuntimeError(format!("index {idx} out of range for length {len}")))
    }
}

/// Get `container[index]` with slowpy semantics (lists only).
pub fn index_get(container: &Value, index: &Value) -> VResult {
    match (container, index) {
        (Value::List(items), Value::Int(i)) => {
            let items = items.borrow();
            let at = resolve_index(*i, items.len())?;
            Ok(items[at].clone())
        }
        (Value::List(_), other) => {
            Err(RuntimeError(format!("list index must be int, got {}", other.type_name())))
        }
        (other, _) => Err(RuntimeError(format!("{} is not indexable", other.type_name()))),
    }
}

/// Set `container[index] = value` with slowpy semantics (lists only).
pub fn index_set(container: &Value, index: &Value, value: Value) -> Result<(), RuntimeError> {
    match (container, index) {
        (Value::List(items), Value::Int(i)) => {
            let mut items = items.borrow_mut();
            let len = items.len();
            let at = resolve_index(*i, len)?;
            items[at] = value;
            Ok(())
        }
        (Value::List(_), other) => {
            Err(RuntimeError(format!("list index must be int, got {}", other.type_name())))
        }
        (other, _) => Err(RuntimeError(format!("{} is not indexable", other.type_name()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Nil.truthy());
        assert!(!Value::Bool(false).truthy());
        assert!(Value::Bool(true).truthy());
        assert!(Value::Int(0).truthy());
        assert!(Value::str("").truthy());
    }

    #[test]
    fn int_arithmetic_stays_int() {
        assert_eq!(arith('+', &Value::Int(2), &Value::Int(3)).unwrap(), Value::Int(5));
        assert_eq!(arith('*', &Value::Int(4), &Value::Int(5)).unwrap(), Value::Int(20));
        assert_eq!(arith('%', &Value::Int(-7), &Value::Int(3)).unwrap(), Value::Int(2));
    }

    #[test]
    fn division_always_floats() {
        assert_eq!(arith('/', &Value::Int(7), &Value::Int(2)).unwrap(), Value::Float(3.5));
    }

    #[test]
    fn intdiv_floors() {
        assert_eq!(intdiv(&Value::Int(7), &Value::Int(2)).unwrap(), Value::Int(3));
        assert_eq!(intdiv(&Value::Int(-7), &Value::Int(2)).unwrap(), Value::Int(-4));
        assert_eq!(intdiv(&Value::Float(7.5), &Value::Int(2)).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn mixed_promotes_to_float() {
        assert_eq!(arith('+', &Value::Int(1), &Value::Float(0.5)).unwrap(), Value::Float(1.5));
    }

    #[test]
    fn string_concat() {
        assert_eq!(arith('+', &Value::str("ab"), &Value::str("cd")).unwrap(), Value::str("abcd"));
    }

    #[test]
    fn division_by_zero_int_mod() {
        assert!(arith('%', &Value::Int(1), &Value::Int(0)).is_err());
        assert!(intdiv(&Value::Int(1), &Value::Int(0)).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(arith('-', &Value::str("a"), &Value::Int(1)).is_err());
        assert!(compare("<", &Value::Nil, &Value::Int(1)).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(compare("<", &Value::Int(1), &Value::Float(1.5)).unwrap(), Value::Bool(true));
        assert_eq!(compare(">=", &Value::str("b"), &Value::str("a")).unwrap(), Value::Bool(true));
        // NaN: all ordered comparisons false
        assert_eq!(
            compare("<", &Value::Float(f64::NAN), &Value::Int(1)).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn cross_type_numeric_equality() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert_ne!(Value::Int(2), Value::str("2"));
    }

    #[test]
    fn list_equality_is_deep() {
        let a = Value::list(vec![Value::Int(1), Value::str("x")]);
        let b = Value::list(vec![Value::Int(1), Value::str("x")]);
        let c = Value::list(vec![Value::Int(2)]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn list_display() {
        let v = Value::list(vec![Value::Int(1), Value::list(vec![Value::Bool(true)])]);
        assert_eq!(v.to_string(), "[1, [true]]");
    }

    #[test]
    fn index_get_set_with_negatives() {
        let l = Value::list(vec![Value::Int(10), Value::Int(20), Value::Int(30)]);
        assert_eq!(index_get(&l, &Value::Int(0)).unwrap(), Value::Int(10));
        assert_eq!(index_get(&l, &Value::Int(-1)).unwrap(), Value::Int(30));
        index_set(&l, &Value::Int(-2), Value::Int(99)).unwrap();
        assert_eq!(index_get(&l, &Value::Int(1)).unwrap(), Value::Int(99));
    }

    #[test]
    fn index_errors() {
        let l = Value::list(vec![Value::Int(1)]);
        assert!(index_get(&l, &Value::Int(1)).is_err());
        assert!(index_get(&l, &Value::Int(-2)).is_err());
        assert!(index_get(&l, &Value::str("k")).is_err());
        assert!(index_get(&Value::Int(3), &Value::Int(0)).is_err());
        assert!(index_set(&l, &Value::Int(5), Value::Nil).is_err());
    }
}
