//! The bytecode compiler: AST → stack-machine code with slot-resolved
//! locals and pre-resolved call targets. Removing name lookups and AST
//! dispatch is what makes the VM tier meaningfully faster than the tree
//! walker — the same lever PyPy pulls (much harder) on Python.

use crate::ast::{BinOp, Expr, Program, Stmt};
use crate::engine::NativeFn;
use crate::value::{RuntimeError, Value};
use std::collections::HashMap;

/// One VM instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Push constant pool entry.
    Const(u16),
    /// Push local slot.
    Load(u16),
    /// Pop into local slot.
    Store(u16),
    /// Arithmetic / comparison (pop two, push one).
    Add,
    Sub,
    Mul,
    Div,
    IntDiv,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Unary (pop one, push one).
    Neg,
    Not,
    /// Unconditional jump to absolute code index.
    Jump(u32),
    /// Pop; jump if falsy.
    JumpIfFalse(u32),
    /// Pop; jump if truthy.
    JumpIfTrue(u32),
    /// Discard top of stack.
    Pop,
    /// Call user function by index with `argc` arguments.
    Call(u16, u8),
    /// Call native function by index with `argc` arguments.
    CallNative(u16, u8),
    /// Return top of stack.
    Return,
    /// Return nil.
    ReturnNil,
    /// Pop `n` items and push a new list of them (in push order).
    NewList(u16),
    /// Pop index then container; push `container[index]`.
    IndexGet,
    /// Pop value, index, container; perform `container[index] = value`.
    IndexSet,
}

/// A compiled function.
#[derive(Clone, Debug)]
pub struct CompiledFn {
    /// Source name.
    pub name: String,
    /// Number of parameters (the first locals).
    pub n_params: usize,
    /// Total local slots (params + vars).
    pub n_locals: usize,
    /// Instructions.
    pub code: Vec<Op>,
}

/// A compiled program.
#[derive(Clone, Debug)]
pub struct Module {
    /// Compiled functions (indices match [`Op::Call`]).
    pub functions: Vec<CompiledFn>,
    /// Constant pool.
    pub consts: Vec<Value>,
    /// Native names (indices match [`Op::CallNative`]), resolved again at
    /// run time against the engine's table.
    pub native_names: Vec<String>,
}

impl Module {
    /// Find a compiled function index by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }
}

/// Compile a program, resolving calls against user functions first and the
/// given native table second.
pub fn compile(
    program: &Program,
    natives: &HashMap<String, NativeFn>,
) -> Result<Module, RuntimeError> {
    let fn_index: HashMap<&str, (u16, usize)> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), (i as u16, f.params.len())))
        .collect();
    let mut module = Module { functions: Vec::new(), consts: Vec::new(), native_names: Vec::new() };
    let mut native_index: HashMap<String, u16> = HashMap::new();
    for f in &program.functions {
        let mut c = FnCompiler {
            fn_index: &fn_index,
            natives,
            native_index: &mut native_index,
            native_names: &mut module.native_names,
            consts: &mut module.consts,
            locals: HashMap::new(),
            code: Vec::new(),
            loops: Vec::new(),
        };
        for (slot, p) in f.params.iter().enumerate() {
            c.locals.insert(p.clone(), slot as u16);
        }
        c.block(&f.body)?;
        c.code.push(Op::ReturnNil);
        let n_locals = c.locals.len();
        let code = c.code;
        module.functions.push(CompiledFn {
            name: f.name.clone(),
            n_params: f.params.len(),
            n_locals,
            code,
        });
    }
    Ok(module)
}

struct LoopCtx {
    start: u32,
    break_patches: Vec<usize>,
}

struct FnCompiler<'a> {
    fn_index: &'a HashMap<&'a str, (u16, usize)>,
    natives: &'a HashMap<String, NativeFn>,
    native_index: &'a mut HashMap<String, u16>,
    native_names: &'a mut Vec<String>,
    consts: &'a mut Vec<Value>,
    locals: HashMap<String, u16>,
    code: Vec<Op>,
    loops: Vec<LoopCtx>,
}

impl FnCompiler<'_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, RuntimeError> {
        Err(RuntimeError(msg.into()))
    }

    fn konst(&mut self, v: Value) -> u16 {
        // Small pools: linear scan dedup is fine and keeps them compact.
        if let Some(i) = self.consts.iter().position(|c| match (c, &v) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Nil, Value::Nil) => true,
            _ => false,
        }) {
            return i as u16;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u16
    }

    fn here(&self) -> u32 {
        self.code.len() as u32
    }

    fn emit_jump(&mut self, op: fn(u32) -> Op) -> usize {
        self.code.push(op(u32::MAX));
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize) {
        let target = self.here();
        self.code[at] = match self.code[at] {
            Op::Jump(_) => Op::Jump(target),
            Op::JumpIfFalse(_) => Op::JumpIfFalse(target),
            Op::JumpIfTrue(_) => Op::JumpIfTrue(target),
            other => unreachable!("patching non-jump {other:?}"),
        };
    }

    fn block(&mut self, stmts: &[Stmt]) -> Result<(), RuntimeError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), RuntimeError> {
        match stmt {
            Stmt::Var(name, e) => {
                self.expr(e)?;
                let slot = match self.locals.get(name) {
                    Some(&s) => s, // redeclaration acts as assignment
                    None => {
                        let s = self.locals.len() as u16;
                        self.locals.insert(name.clone(), s);
                        s
                    }
                };
                self.code.push(Op::Store(slot));
            }
            Stmt::Assign(name, e) => {
                let Some(&slot) = self.locals.get(name) else {
                    return self.err(format!("assignment to undeclared variable {name:?}"));
                };
                self.expr(e)?;
                self.code.push(Op::Store(slot));
            }
            Stmt::If(cond, then, els) => {
                self.expr(cond)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                self.block(then)?;
                if els.is_empty() {
                    self.patch(jf);
                } else {
                    let jend = self.emit_jump(Op::Jump);
                    self.patch(jf);
                    self.block(els)?;
                    self.patch(jend);
                }
            }
            Stmt::While(cond, body) => {
                let start = self.here();
                self.expr(cond)?;
                let jexit = self.emit_jump(Op::JumpIfFalse);
                self.loops.push(LoopCtx { start, break_patches: vec![] });
                self.block(body)?;
                let ctx = self.loops.pop().expect("loop context pushed above");
                self.code.push(Op::Jump(ctx.start));
                self.patch(jexit);
                for at in ctx.break_patches {
                    self.patch(at);
                }
            }
            Stmt::Return(e) => match e {
                Some(e) => {
                    self.expr(e)?;
                    self.code.push(Op::Return);
                }
                None => self.code.push(Op::ReturnNil),
            },
            Stmt::Break => {
                if self.loops.is_empty() {
                    return self.err("break outside loop");
                }
                let at = self.emit_jump(Op::Jump);
                self.loops.last_mut().expect("checked").break_patches.push(at);
            }
            Stmt::Continue => {
                let Some(ctx) = self.loops.last() else {
                    return self.err("continue outside loop");
                };
                let start = ctx.start;
                self.code.push(Op::Jump(start));
            }
            Stmt::IndexAssign(container, index, value) => {
                self.expr(container)?;
                self.expr(index)?;
                self.expr(value)?;
                self.code.push(Op::IndexSet);
            }
            Stmt::Expr(e) => {
                self.expr(e)?;
                self.code.push(Op::Pop);
            }
        }
        Ok(())
    }

    fn expr(&mut self, e: &Expr) -> Result<(), RuntimeError> {
        match e {
            Expr::Int(v) => {
                let k = self.konst(Value::Int(*v));
                self.code.push(Op::Const(k));
            }
            Expr::Float(v) => {
                let k = self.konst(Value::Float(*v));
                self.code.push(Op::Const(k));
            }
            Expr::Str(s) => {
                let k = self.konst(Value::str(s));
                self.code.push(Op::Const(k));
            }
            Expr::Bool(b) => {
                let k = self.konst(Value::Bool(*b));
                self.code.push(Op::Const(k));
            }
            Expr::Nil => {
                let k = self.konst(Value::Nil);
                self.code.push(Op::Const(k));
            }
            Expr::Var(name) => {
                let Some(&slot) = self.locals.get(name) else {
                    return self.err(format!("undefined variable {name:?}"));
                };
                self.code.push(Op::Load(slot));
            }
            Expr::Neg(e) => {
                self.expr(e)?;
                self.code.push(Op::Neg);
            }
            Expr::Not(e) => {
                self.expr(e)?;
                self.code.push(Op::Not);
            }
            Expr::And(a, b) => {
                // a and b  →  bool
                self.expr(a)?;
                let jf = self.emit_jump(Op::JumpIfFalse);
                self.expr(b)?;
                let jf2 = self.emit_jump(Op::JumpIfFalse);
                let kt = self.konst(Value::Bool(true));
                self.code.push(Op::Const(kt));
                let jend = self.emit_jump(Op::Jump);
                self.patch(jf);
                self.patch(jf2);
                let kf = self.konst(Value::Bool(false));
                self.code.push(Op::Const(kf));
                self.patch(jend);
            }
            Expr::Or(a, b) => {
                self.expr(a)?;
                let jt = self.emit_jump(Op::JumpIfTrue);
                self.expr(b)?;
                let jt2 = self.emit_jump(Op::JumpIfTrue);
                let kf = self.konst(Value::Bool(false));
                self.code.push(Op::Const(kf));
                let jend = self.emit_jump(Op::Jump);
                self.patch(jt);
                self.patch(jt2);
                let kt = self.konst(Value::Bool(true));
                self.code.push(Op::Const(kt));
                self.patch(jend);
            }
            Expr::Bin(op, a, b) => {
                self.expr(a)?;
                self.expr(b)?;
                self.code.push(match op {
                    BinOp::Add => Op::Add,
                    BinOp::Sub => Op::Sub,
                    BinOp::Mul => Op::Mul,
                    BinOp::Div => Op::Div,
                    BinOp::IntDiv => Op::IntDiv,
                    BinOp::Mod => Op::Mod,
                    BinOp::Eq => Op::Eq,
                    BinOp::Ne => Op::Ne,
                    BinOp::Lt => Op::Lt,
                    BinOp::Le => Op::Le,
                    BinOp::Gt => Op::Gt,
                    BinOp::Ge => Op::Ge,
                });
            }
            Expr::List(items) => {
                if items.len() > u16::MAX as usize {
                    return self.err("list literal too long");
                }
                for item in items {
                    self.expr(item)?;
                }
                self.code.push(Op::NewList(items.len() as u16));
            }
            Expr::Index(container, index) => {
                self.expr(container)?;
                self.expr(index)?;
                self.code.push(Op::IndexGet);
            }
            Expr::Call(name, args) => {
                if args.len() > u8::MAX as usize {
                    return self.err("too many call arguments");
                }
                for a in args {
                    self.expr(a)?;
                }
                if let Some(&(idx, arity)) = self.fn_index.get(name.as_str()) {
                    if arity != args.len() {
                        return self.err(format!(
                            "{name:?} expects {arity} arguments, got {}",
                            args.len()
                        ));
                    }
                    self.code.push(Op::Call(idx, args.len() as u8));
                } else if self.natives.contains_key(name) {
                    let idx = match self.native_index.get(name) {
                        Some(&i) => i,
                        None => {
                            let i = self.native_names.len() as u16;
                            self.native_names.push(name.clone());
                            self.native_index.insert(name.clone(), i);
                            i
                        }
                    };
                    self.code.push(Op::CallNative(idx, args.len() as u8));
                } else {
                    return self.err(format!("unknown function {name:?}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Result<Module, RuntimeError> {
        compile(&parse(src).unwrap(), &HashMap::new())
    }

    #[test]
    fn compiles_and_indexes_functions() {
        let m = compile_src("fn a() { return 1; } fn b() { return a(); }").unwrap();
        assert_eq!(m.function_index("a"), Some(0));
        assert_eq!(m.function_index("b"), Some(1));
        assert!(m.functions[1].code.contains(&Op::Call(0, 0)));
    }

    #[test]
    fn locals_are_slot_resolved() {
        let m = compile_src("fn f(a, b) { var c = a + b; return c; }").unwrap();
        let f = &m.functions[0];
        assert_eq!(f.n_params, 2);
        assert_eq!(f.n_locals, 3);
        assert!(f.code.contains(&Op::Load(0)));
        assert!(f.code.contains(&Op::Store(2)));
    }

    #[test]
    fn constants_are_deduplicated() {
        let m = compile_src("fn f() { return 7 + 7 + 7; }").unwrap();
        let sevens = m.consts.iter().filter(|c| **c == Value::Int(7)).count();
        assert_eq!(sevens, 1);
    }

    #[test]
    fn compile_errors() {
        assert!(compile_src("fn f() { return x; }").is_err());
        assert!(compile_src("fn f() { x = 1; }").is_err());
        assert!(compile_src("fn f() { return g(); }").is_err());
        assert!(compile_src("fn f() { break; }").is_err());
        assert!(compile_src("fn f() { continue; }").is_err());
        assert!(compile_src("fn a(x) { return x; } fn f() { return a(); }").is_err());
        // arity
    }

    #[test]
    fn jumps_are_patched() {
        let m = compile_src("fn f(n) { while (n > 0) { n = n - 1; } return n; }").unwrap();
        for op in &m.functions[0].code {
            if let Op::Jump(t) | Op::JumpIfFalse(t) | Op::JumpIfTrue(t) = op {
                assert!((*t as usize) <= m.functions[0].code.len(), "unpatched jump");
                assert_ne!(*t, u32::MAX, "unpatched jump");
            }
        }
    }
}
