//! Offline drop-in replacement for the subset of `criterion` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so external
//! dependencies are vendored as minimal shims (see `crates/shims/`).
//! This harness keeps Criterion's bench-definition API
//! (`criterion_group!`/`criterion_main!`, groups, `Bencher::iter`) and
//! reports mean/min wall-clock time per iteration. There is no
//! statistical analysis, HTML report, or saved baseline — numbers are
//! printed to stdout, one line per benchmark.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for convenience; real criterion has its own `black_box`.
pub use std::hint::black_box;

/// Top-level harness handle, passed to every bench function.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
            measurement_time: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// Identifier `function_name/parameter` used by `bench_with_input`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = if id.is_empty() { self.name.clone() } else { format!("{}/{}", self.name, id) };
        let budget = self.measurement_time.unwrap_or(self.criterion.measurement_time);
        let mut bencher = Bencher { budget, samples: self.sample_size, measurements: Vec::new() };
        f(&mut bencher);
        report(&label, &bencher.measurements);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.to_string(), |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Timing loop handle. `iter` runs the closure repeatedly and records
/// per-iteration wall-clock time.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    measurements: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and per-iteration cost estimate.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));

        // Aim for `samples` samples inside the time budget, at least one
        // iteration per sample.
        let per_sample = self.budget / self.samples as u32;
        let iters = (per_sample.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u32;

        let deadline = Instant::now() + self.budget;
        self.measurements.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.measurements.push(start.elapsed() / iters);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<40} time: [{} {} {}]  ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Collect bench functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group in sequence.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { measurement_time: Duration::from_millis(20) };
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(5);
        let mut count = 0u64;
        group.bench_function("increment", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("kernel", 42).to_string(), "kernel/42");
    }
}
