//! Offline drop-in replacement for the subset of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so external
//! dependencies are vendored as minimal shims (see `crates/shims/`).
//! This shim keeps the property-test *interface* (strategies,
//! combinators, the `proptest!` macro and `prop_assert*` family) but
//! simplifies the engine:
//!
//! - Generation is deterministic: each test derives its RNG seed from
//!   the test name, so runs are reproducible without a persistence file
//!   (`proptest-regressions/` files are ignored).
//! - No shrinking: a failing case reports the generated inputs via the
//!   assertion message instead of minimizing them.
//! - String strategies support only the `".*"` pattern (arbitrary
//!   unicode strings), which is the only pattern used in-tree.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honored.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic splitmix64 generator.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
        }

        /// Seed derived from the test name so each test gets a stable,
        /// independent stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            // Rejection sampling for uniformity.
            let zone = u64::MAX - (u64::MAX % n);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::PhantomData;
    use super::Range;
    use super::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = Rc::new(self);
            BoxedStrategy { gen: Rc::new(move |rng| inner.generate(rng)) }
        }

        /// Build a recursive strategy: `self` is the leaf, `recurse`
        /// wraps an inner strategy into a branch, nested at most
        /// `depth` levels.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let branch = recurse(strat).boxed();
                let leaf = leaf.clone();
                strat = BoxedStrategy {
                    gen: Rc::new(move |rng: &mut TestRng| {
                        // 1-in-4 chance of bottoming out early keeps
                        // generated trees size-diverse.
                        if rng.below(4) == 0 {
                            leaf.generate(rng)
                        } else {
                            branch.generate(rng)
                        }
                    }),
                };
            }
            strat
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        gen: Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { gen: Rc::clone(&self.gen) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 10000 consecutive values", self.whence);
        }
    }

    /// Uniform choice among type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Arbitrary bit patterns: exercises NaN, infinities, and
            // subnormals, matching real proptest's coverage intent.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Pool used by the `".*"` string strategy: ASCII, XML-special
    /// characters, whitespace, and multi-byte code points.
    const STR_POOL: &[char] = &[
        'a',
        'b',
        'c',
        'z',
        'A',
        'Z',
        '0',
        '9',
        ' ',
        '_',
        '-',
        '.',
        ',',
        '/',
        ':',
        '=',
        '?',
        '!',
        '#',
        '(',
        ')',
        '[',
        ']',
        '{',
        '}',
        '<',
        '>',
        '&',
        '"',
        '\'',
        '\\',
        '\n',
        '\t',
        '\u{e9}',
        '\u{3bb}',
        '\u{4e2d}',
        '\u{1f680}',
        '\u{fffd}',
        '\u{0}',
    ];

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            assert_eq!(*self, ".*", "this proptest shim only supports the \".*\" string pattern");
            let len = rng.below(24) as usize;
            (0..len).map(|_| STR_POOL[rng.below(STR_POOL.len() as u64) as usize]).collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! { (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::Range;

    /// Element-count bound for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_exclusive: n + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy { element: self.element.clone(), size: self.size }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declare property tests. Each `fn` becomes a `#[test]` that runs
/// `config.cases` deterministic cases of its body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr;
     $($(#[$attr:meta])+
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])+
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice among alternative strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Fail the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic_per_test() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(any::<u64>(), 0..8);
        let a: Vec<Vec<u64>> = {
            let mut rng = TestRng::for_test("x");
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut rng = TestRng::for_test("x");
            (0..16).map(|_| strat.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..7, y in 3usize..9) {
            prop_assert!((-5..7).contains(&x));
            prop_assert!((3..9).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size_range(
            v in crate::collection::vec(any::<u8>(), 2..5),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn oneof_and_filter_compose(
            n in prop_oneof![Just(1u64), (10u64..20), any::<u64>().prop_filter("even", |n| n % 2 == 0)],
        ) {
            prop_assume!(n != 1);
            prop_assert!(n % 2 == 0 || (10..20).contains(&n));
        }

        #[test]
        fn strings_are_valid_utf8(s in ".*") {
            prop_assert_eq!(s.chars().count() <= 24, true);
        }
    }
}
