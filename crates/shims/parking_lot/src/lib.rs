//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses, implemented over `std::sync`.
//!
//! The build environment has no access to crates.io, so external
//! dependencies are vendored as minimal shims (see `crates/shims/`).
//! Differences from the real crate that matter here:
//!
//! - Lock poisoning is ignored (`parking_lot` has no poisoning): a
//!   panicked holder does not poison the lock for later users.
//! - [`Condvar::wait`] takes `&mut MutexGuard`, like `parking_lot`,
//!   by briefly moving the inner std guard through the wait call.
//! - No fairness / eventual-fairness machinery; timing-sensitive code
//!   should not assume `parking_lot`'s fairness properties.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutex whose `lock()` returns the guard directly (no `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. Wraps the std guard in an `Option` so a
/// condvar wait can move the std guard out and back without consuming
/// the outer guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => {
                Some(MutexGuard { inner: Some(e.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during condvar wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during condvar wait")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable compatible with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: result.timed_out() }
    }

    /// Wait until `deadline`, returning immediately if it already passed.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult { timed_out: true };
        }
        self.wait_for(guard, timeout)
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let s2 = Arc::clone(&shared);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *shared.0.lock() = true;
        shared.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let start = Instant::now();
        let result = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
        drop(g);
    }

    #[test]
    fn condvar_wait_until_respects_deadline() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        // A deadline in the past returns immediately as timed out.
        assert!(cv.wait_until(&mut g, Instant::now()).timed_out());
        let start = Instant::now();
        let result = cv.wait_until(&mut g, start + Duration::from_millis(20));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(10));
        drop(g);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
