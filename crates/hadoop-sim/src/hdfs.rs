//! HDFS cost model: namenode metadata traffic and bulk data movement.
//!
//! The WordCount experiment (§V-B) is dominated by this component: "With
//! the full dataset, Hadoop struggles to load the data from so many
//! locations, making the start up time alone take nearly nine minutes."
//! Every file contributes namenode round-trips (directory listing, open,
//! block lookup), serialized through the single namenode; bulk bytes move
//! at disk/network bandwidth in parallel across nodes.

use crate::config::SimConfig;
use std::time::Duration;

/// A staged input: how the input corpus looks to the job.
#[derive(Clone, Copy, Debug)]
pub struct InputProfile {
    /// Number of input files.
    pub files: u64,
    /// Number of directories that must be listed to find them.
    pub directories: u64,
    /// Total input bytes.
    pub bytes: u64,
}

impl InputProfile {
    /// A single logical file of `bytes` (the shape Hadoop's loader likes).
    pub fn single_file(bytes: u64) -> Self {
        InputProfile { files: 1, directories: 1, bytes }
    }
}

/// Time for the job client + JobTracker to enumerate the input and compute
/// splits: pure namenode metadata traffic, serialized.
///
/// Each directory costs one listing op; each file costs two ops (status +
/// block locations), matching `FileInputFormat.listStatus` + `getSplits`.
pub fn input_scan_time(cfg: &SimConfig, input: &InputProfile) -> Duration {
    let ops = input.directories + 2 * input.files;
    cfg.namenode_op * (ops as u32)
}

/// Time to copy data *into* HDFS (used when the corpus does not already
/// live there): per-file create ops plus bulk transfer at disk bandwidth.
pub fn upload_time(cfg: &SimConfig, input: &InputProfile, nodes: usize) -> Duration {
    let meta = cfg.namenode_op * (input.files as u32);
    let streams = nodes.max(1) as f64;
    let bulk = Duration::from_secs_f64(input.bytes as f64 / (cfg.disk_bytes_per_sec * streams));
    meta + bulk
}

/// Time to read `bytes` from HDFS on `readers` parallel readers.
pub fn read_time(cfg: &SimConfig, bytes: u64, readers: usize) -> Duration {
    let streams = readers.max(1) as f64;
    Duration::from_secs_f64(bytes as f64 / (cfg.disk_bytes_per_sec * streams))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cost_grows_with_file_count_not_bytes() {
        let cfg = SimConfig::default();
        let few_big = InputProfile { files: 10, directories: 2, bytes: 10_000_000_000 };
        let many_small = InputProfile { files: 31_173, directories: 800, bytes: 10_000_000_000 };
        assert!(input_scan_time(&cfg, &many_small) > input_scan_time(&cfg, &few_big) * 100);
    }

    #[test]
    fn full_gutenberg_scan_matches_paper_scale() {
        // 31,173 files in a nested directory tree: the paper reports nearly
        // nine minutes of startup. Our mechanistic model must land in the
        // right ballpark (minutes, not seconds).
        let cfg = SimConfig::default();
        let gutenberg = InputProfile { files: 31_173, directories: 7_000, bytes: 12_000_000_000 };
        let scan = input_scan_time(&cfg, &gutenberg).as_secs_f64();
        assert!((400.0..900.0).contains(&scan), "scan {scan}s");
    }

    #[test]
    fn subset_scan_matches_paper_scale() {
        // 8,316 files: the paper reports about one minute of preparation.
        let cfg = SimConfig::default();
        let subset = InputProfile { files: 8_316, directories: 1_900, bytes: 3_000_000_000 };
        let scan = input_scan_time(&cfg, &subset).as_secs_f64();
        assert!((60.0..400.0).contains(&scan), "scan {scan}s");
    }

    #[test]
    fn upload_parallelism_helps_bulk_not_meta() {
        let cfg = SimConfig::default();
        let input = InputProfile { files: 1000, directories: 10, bytes: 1_000_000_000 };
        let t1 = upload_time(&cfg, &input, 1);
        let t8 = upload_time(&cfg, &input, 8);
        assert!(t8 < t1);
        // Metadata floor remains.
        assert!(t8 >= cfg.namenode_op * 1000);
    }

    #[test]
    fn read_time_scales_inverse_with_readers() {
        let cfg = SimConfig::default();
        let t1 = read_time(&cfg, 600_000_000, 1);
        let t6 = read_time(&cfg, 600_000_000, 6);
        assert!((t1.as_secs_f64() / t6.as_secs_f64() - 6.0).abs() < 0.01);
    }
}
