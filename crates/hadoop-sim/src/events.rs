//! The discrete-event core: a deterministic time-ordered event queue.

use crate::clock::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered queue of events. Events at equal times pop in insertion
/// order (FIFO), which keeps the simulation deterministic.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(SimTime, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule an event. Scheduling in the past is an error — the
    /// simulation may never travel backwards.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "event scheduled in the past: {at:?} < {:?}", self.now);
        self.heap.push(Entry { key: Reverse((at, self.seq)), event });
        self.seq += 1;
    }

    /// Pop the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        let (at, _) = entry.key.0;
        self.now = at;
        Some((at, entry.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::time::Duration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(3.0), "c");
        q.push(SimTime::from_secs_f64(1.0), "a");
        q.push(SimTime::from_secs_f64(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs_f64(5.0));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(2.0), ());
        q.pop();
        q.push(SimTime::from_secs_f64(1.0), ());
    }

    #[test]
    fn push_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs_f64(1.0), 1);
        q.pop();
        q.push(q.now(), 2); // same instant: fine
        assert_eq!(q.pop().unwrap().1, 2);
    }

    proptest! {
        #[test]
        fn prop_monotonic_clock(times in proptest::collection::vec(0u64..10_000, 1..100)) {
            let mut q = EventQueue::new();
            for &ms in &times {
                q.push(SimTime::ZERO + Duration::from_millis(ms), ms);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }
    }
}
