//! A discrete-event Hadoop (MR1-era) baseline on a virtual clock.
//!
//! The paper's quantitative claims all rest on Hadoop's *structural*
//! overheads: ≈30 s of fixed cost per MapReduce job and a per-file
//! namenode penalty that makes staging 31,173 Project-Gutenberg files take
//! ≈9 minutes (§V-B). We cannot run a 2012 Hadoop cluster here, so this
//! crate reproduces those mechanisms rather than the constants alone:
//!
//! * a **JobTracker/TaskTracker** model where tasks are only assigned and
//!   their completions only observed on 3-second heartbeats,
//! * per-task **JVM spawn** cost,
//! * **setup and cleanup tasks** that are scheduled like any other task,
//! * an **HDFS namenode** whose metadata operations are charged per file,
//! * a **job client** that polls for completion on its own interval,
//! * real execution of the user's map/reduce functions (via `mrs-core`'s
//!   task kernels), with measured compute time folded into the virtual
//!   timeline.
//!
//! The result: correct MapReduce *outputs*, plus a virtual-time [`JobReport`]
//! whose shape matches the paper's Hadoop measurements.

pub mod clock;
pub mod cluster;
pub mod config;
pub mod events;
pub mod hdfs;

pub use clock::SimTime;
pub use cluster::{HadoopCluster, JobReport};
pub use config::SimConfig;
