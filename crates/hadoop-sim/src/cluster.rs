//! The JobTracker/TaskTracker discrete-event model.
//!
//! One [`HadoopCluster::run_job`] call plays out a full MR1 job on the
//! virtual clock: input scan (namenode), submission, a setup task, map
//! tasks, a barrier, reduce tasks (with shuffle), a cleanup task, and the
//! client's completion poll. Task *grants* and task-completion
//! *observations* both happen only on TaskTracker heartbeats, which is the
//! mechanism behind Hadoop's ~30 s per-job floor.
//!
//! The user's map/reduce functions really execute (so outputs are correct
//! and comparable with the Mrs runtimes), and their measured compute time
//! is charged to the virtual timeline.

use crate::clock::SimTime;
use crate::config::SimConfig;
use crate::events::EventQueue;
use crate::hdfs::{input_scan_time, read_time, InputProfile};
use mrs_core::task::{run_map_task, run_reduce_task};
use mrs_core::{Bucket, Error, FuncId, Program, Record, Result};
use mrs_rng::splitmix::hash_bytes;
use std::collections::{HashMap, VecDeque};
use std::time::Duration;

/// A simulated Hadoop cluster.
#[derive(Clone, Debug)]
pub struct HadoopCluster {
    nodes: usize,
    cfg: SimConfig,
}

/// Everything needed to run one job.
pub struct JobSpec<'a> {
    /// The program (shared with the Mrs runtimes via `mrs-core`).
    pub program: &'a dyn Program,
    /// Map function id.
    pub map_func: FuncId,
    /// Reduce function id.
    pub reduce_func: FuncId,
    /// Run the combiner after map tasks.
    pub combine: bool,
    /// The input records (conceptually already in HDFS).
    pub input: Vec<Record>,
    /// How that input looks to the namenode (file/directory counts drive
    /// the scan cost; bytes drive read time).
    pub input_profile: InputProfile,
    /// Number of map tasks.
    pub n_maps: usize,
    /// Number of reduce tasks.
    pub n_reduces: usize,
}

/// What the job produced and when.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// The job's output records (all reduce partitions concatenated).
    pub output: Vec<Record>,
    /// Client-observed total job time (virtual).
    pub total: Duration,
    /// Input-scan (namenode) portion of the total.
    pub input_scan: Duration,
    /// Virtual time when the last map completion was observed.
    pub maps_done_at: Duration,
    /// Virtual time when the last reduce completion was observed.
    pub reduces_done_at: Duration,
    /// Real (wall) compute time spent in user map code.
    pub map_compute: Duration,
    /// Real (wall) compute time spent in user reduce code.
    pub reduce_compute: Duration,
    /// Total bytes shuffled from maps to reduces.
    pub shuffle_bytes: u64,
    /// Speculative (backup) map attempts launched.
    pub speculative_launched: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    Setup,
    Maps,
    Reduces,
    Cleanup,
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Task {
    Setup,
    Map(usize),
    Reduce(usize),
    Cleanup,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    Heartbeat(usize),
    Finish { tracker: usize, task: Task },
}

struct Tracker {
    free_map_slots: usize,
    free_reduce_slots: usize,
    /// Tasks finished but not yet reported (observed at next heartbeat).
    pending_reports: Vec<Task>,
}

impl HadoopCluster {
    /// A cluster of `nodes` TaskTrackers.
    pub fn new(nodes: usize, cfg: SimConfig) -> Result<HadoopCluster> {
        if nodes == 0 {
            return Err(Error::Invalid("cluster needs at least one node".into()));
        }
        cfg.validate().map_err(Error::Invalid)?;
        Ok(HadoopCluster { nodes, cfg })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Run one MapReduce job to completion on the virtual clock.
    pub fn run_job(&self, spec: &JobSpec) -> Result<JobReport> {
        let cfg = &self.cfg;
        if spec.n_maps == 0 || spec.n_reduces == 0 {
            return Err(Error::Invalid("need at least one map and one reduce task".into()));
        }

        // ---- pre-DES: namenode scan + submission --------------------------
        let scan = input_scan_time(cfg, &spec.input_profile);
        let t0 = SimTime::ZERO + scan + cfg.submit_overhead;

        // Split input (contiguous, even) and precompute per-split byte size.
        let splits = split_evenly(&spec.input, spec.n_maps);
        let split_bytes: Vec<u64> = splits
            .iter()
            .map(|s| s.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum())
            .collect();

        // ---- DES state ----------------------------------------------------
        let mut q: EventQueue<Ev> = EventQueue::new();
        let mut trackers: Vec<Tracker> = (0..self.nodes)
            .map(|_| Tracker {
                free_map_slots: cfg.map_slots,
                free_reduce_slots: cfg.reduce_slots,
                pending_reports: Vec::new(),
            })
            .collect();
        let phase_of = |i: usize| cfg.heartbeat * (i as u32) / (self.nodes as u32);
        for i in 0..self.nodes {
            q.push(t0.next_tick(cfg.heartbeat, phase_of(i)), Ev::Heartbeat(i));
        }

        let mut phase = Phase::Setup;
        let mut setup_assigned = false;
        let mut cleanup_assigned = false;
        let mut maps_pending: VecDeque<usize> = (0..spec.n_maps).collect();
        let mut reduces_pending: VecDeque<usize> = (0..spec.n_reduces).collect();
        let mut maps_reported = 0usize;
        let mut reduces_reported = 0usize;
        let mut map_outputs: Vec<Option<Vec<Bucket>>> = vec![None; spec.n_maps];
        let mut reduce_outputs: Vec<Option<Bucket>> = vec![None; spec.n_reduces];
        // Straggler/speculation bookkeeping (maps only, like early Hadoop).
        let mut map_done: Vec<bool> = vec![false; spec.n_maps];
        let mut map_base_dur: Vec<Duration> = vec![Duration::ZERO; spec.n_maps];
        let mut map_speculated: Vec<bool> = vec![false; spec.n_maps];
        let mut map_running: HashMap<usize, SimTime> = HashMap::new(); // expected finish
        let mut done_map_durs: Vec<Duration> = Vec::new();
        let mut speculative_launched = 0u64;
        let mut map_compute = Duration::ZERO;
        let mut reduce_compute = Duration::ZERO;
        let mut shuffle_bytes = 0u64;
        let mut maps_done_at = SimTime::ZERO;
        let mut reduces_done_at = SimTime::ZERO;
        let mut cleanup_done_at = SimTime::ZERO;

        while phase != Phase::Done {
            let (now, ev) = q.pop().ok_or_else(|| {
                Error::Invalid("simulation ran out of events before completion".into())
            })?;
            match ev {
                Ev::Finish { tracker, task } => {
                    // Slot frees at finish; the JobTracker only *learns* of
                    // the completion at this tracker's next heartbeat.
                    let t = &mut trackers[tracker];
                    match task {
                        Task::Reduce(_) => t.free_reduce_slots += 1,
                        _ => t.free_map_slots += 1,
                    }
                    if let Task::Map(m) = task {
                        if map_done[m] {
                            // A later duplicate (original or backup) of an
                            // already-finished map: free the slot, report
                            // nothing — first finisher won.
                            continue;
                        }
                        map_done[m] = true;
                        done_map_durs.push(map_base_dur[m]);
                        map_running.remove(&m);
                    }
                    t.pending_reports.push(task);
                }
                Ev::Heartbeat(i) => {
                    // 1. Observe completions reported by this tracker.
                    for task in std::mem::take(&mut trackers[i].pending_reports) {
                        match task {
                            Task::Setup => phase = Phase::Maps,
                            Task::Map(_) => {
                                maps_reported += 1;
                                if maps_reported == spec.n_maps {
                                    phase = Phase::Reduces;
                                    maps_done_at = now;
                                }
                            }
                            Task::Reduce(_) => {
                                reduces_reported += 1;
                                if reduces_reported == spec.n_reduces {
                                    phase = Phase::Cleanup;
                                    reduces_done_at = now;
                                }
                            }
                            Task::Cleanup => {
                                phase = Phase::Done;
                                cleanup_done_at = now;
                            }
                        }
                    }
                    if phase == Phase::Done {
                        break;
                    }

                    // 2. Grant work to free slots.
                    loop {
                        let granted = match phase {
                            Phase::Setup if !setup_assigned && trackers[i].free_map_slots > 0 => {
                                setup_assigned = true;
                                trackers[i].free_map_slots -= 1;
                                let dur = cfg.jvm_spawn + cfg.task_overhead;
                                q.push(now + dur, Ev::Finish { tracker: i, task: Task::Setup });
                                true
                            }
                            Phase::Maps if trackers[i].free_map_slots > 0 => {
                                match maps_pending.pop_front() {
                                    Some(m) => {
                                        trackers[i].free_map_slots -= 1;
                                        let (buckets, real) = {
                                            let t = std::time::Instant::now();
                                            let b = run_map_task(
                                                spec.program,
                                                spec.map_func,
                                                &splits[m],
                                                spec.n_reduces,
                                                spec.combine,
                                            )?;
                                            (b, t.elapsed())
                                        };
                                        map_compute += real;
                                        let base = cfg.jvm_spawn
                                            + cfg.task_overhead
                                            + read_time(cfg, split_bytes[m], 1)
                                            + real.mul_f64(cfg.compute_scale);
                                        map_base_dur[m] = base;
                                        let dur = if is_straggler(cfg, m, 0) {
                                            base.mul_f64(cfg.straggler_factor)
                                        } else {
                                            base
                                        };
                                        map_outputs[m] = Some(buckets);
                                        map_running.insert(m, now + dur);
                                        q.push(
                                            now + dur,
                                            Ev::Finish { tracker: i, task: Task::Map(m) },
                                        );
                                        true
                                    }
                                    // Queue drained: consider a speculative
                                    // backup for a slow running map.
                                    None if cfg.speculative => {
                                        match speculation_candidate(
                                            now,
                                            &map_running,
                                            &map_speculated,
                                            &done_map_durs,
                                        ) {
                                            None => false,
                                            Some(m) => {
                                                trackers[i].free_map_slots -= 1;
                                                map_speculated[m] = true;
                                                speculative_launched += 1;
                                                // The backup attempt runs at
                                                // base speed (speculation's
                                                // premise: the slowness was
                                                // environmental).
                                                let dur = map_base_dur[m];
                                                q.push(
                                                    now + dur,
                                                    Ev::Finish { tracker: i, task: Task::Map(m) },
                                                );
                                                true
                                            }
                                        }
                                    }
                                    None => false,
                                }
                            }
                            Phase::Reduces if trackers[i].free_reduce_slots > 0 => {
                                match reduces_pending.pop_front() {
                                    None => false,
                                    Some(r) => {
                                        trackers[i].free_reduce_slots -= 1;
                                        let mut input = Bucket::new();
                                        for mo in map_outputs.iter().flatten() {
                                            input.extend_from(&mo[r]);
                                        }
                                        let in_bytes = input.byte_size() as u64;
                                        shuffle_bytes += in_bytes;
                                        let (out, real) = {
                                            let t = std::time::Instant::now();
                                            let o = run_reduce_task(
                                                spec.program,
                                                spec.reduce_func,
                                                input,
                                            )?;
                                            (o, t.elapsed())
                                        };
                                        reduce_compute += real;
                                        let out_bytes = out.byte_size() as u64;
                                        let dur = cfg.jvm_spawn
                                            + cfg.task_overhead
                                            + Duration::from_secs_f64(
                                                in_bytes as f64 / cfg.shuffle_bytes_per_sec,
                                            )
                                            + Duration::from_secs_f64(
                                                out_bytes as f64 / cfg.disk_bytes_per_sec,
                                            )
                                            + real.mul_f64(cfg.compute_scale);
                                        reduce_outputs[r] = Some(out);
                                        q.push(
                                            now + dur,
                                            Ev::Finish { tracker: i, task: Task::Reduce(r) },
                                        );
                                        true
                                    }
                                }
                            }
                            Phase::Cleanup
                                if !cleanup_assigned && trackers[i].free_map_slots > 0 =>
                            {
                                cleanup_assigned = true;
                                trackers[i].free_map_slots -= 1;
                                let dur = cfg.jvm_spawn + cfg.task_overhead;
                                q.push(now + dur, Ev::Finish { tracker: i, task: Task::Cleanup });
                                true
                            }
                            _ => false,
                        };
                        if !granted {
                            break;
                        }
                    }

                    // 3. Keep heartbeating.
                    q.push(now + cfg.heartbeat, Ev::Heartbeat(i));
                }
            }
        }

        // The client sees completion on its next status poll.
        let observed = cleanup_done_at.next_tick(cfg.client_poll, Duration::ZERO);
        let output: Vec<Record> =
            reduce_outputs.into_iter().flatten().flat_map(Bucket::into_records).collect();

        Ok(JobReport {
            output,
            total: observed.as_duration(),
            input_scan: scan,
            maps_done_at: maps_done_at.as_duration(),
            reduces_done_at: reduces_done_at.as_duration(),
            map_compute,
            reduce_compute,
            shuffle_bytes,
            speculative_launched,
        })
    }
}

/// Deterministic straggler lottery for a map attempt.
fn is_straggler(cfg: &SimConfig, map: usize, attempt: u32) -> bool {
    if cfg.straggler_prob <= 0.0 {
        return false;
    }
    let mut key = [0u8; 12];
    key[..8].copy_from_slice(&(map as u64).to_le_bytes());
    key[8..].copy_from_slice(&attempt.to_le_bytes());
    let h = hash_bytes(0x7374_7261_6767, &key); // "stragg"
    (h as f64 / u64::MAX as f64) < cfg.straggler_prob
}

/// Pick a running, not-yet-speculated map whose expected finish is still
/// more than 1.5 typical task durations away — Hadoop's "much slower than
/// its peers" rule, simplified.
fn speculation_candidate(
    now: SimTime,
    running: &HashMap<usize, SimTime>,
    speculated: &[bool],
    done_durs: &[Duration],
) -> Option<usize> {
    if done_durs.is_empty() {
        return None;
    }
    let mut sorted: Vec<Duration> = done_durs.to_vec();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    let threshold = now + median.mul_f64(1.5);
    running
        .iter()
        .filter(|&(&m, &expected)| !speculated[m] && expected > threshold)
        .map(|(&m, _)| m)
        .min() // deterministic choice
}

fn split_evenly(records: &[Record], splits: usize) -> Vec<Vec<Record>> {
    let n = records.len();
    let base = n / splits;
    let extra = n % splits;
    let mut out = Vec::with_capacity(splits);
    let mut pos = 0;
    for i in 0..splits {
        let take = base + usize::from(i < extra);
        out.push(records[pos..pos + take].to_vec());
        pos += take;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::kv::encode_record;
    use mrs_core::{Datum, MapReduce, Simple};

    struct WordCount;

    impl MapReduce for WordCount {
        type K1 = u64;
        type V1 = String;
        type K2 = String;
        type V2 = u64;

        fn map(&self, _k: u64, v: String, emit: &mut dyn FnMut(String, u64)) {
            for w in v.split_whitespace() {
                emit(w.to_owned(), 1);
            }
        }

        fn reduce(
            &self,
            _k: &String,
            vs: &mut dyn Iterator<Item = u64>,
            emit: &mut dyn FnMut(u64),
        ) {
            emit(vs.sum());
        }

        fn has_combiner(&self) -> bool {
            true
        }
    }

    fn spec_input(lines: &[&str]) -> Vec<Record> {
        lines.iter().enumerate().map(|(i, l)| encode_record(&(i as u64), &l.to_string())).collect()
    }

    fn tiny_spec<'a>(program: &'a Simple<WordCount>, input: &'a [Record]) -> JobSpec<'a> {
        JobSpec {
            program,
            map_func: 0,
            reduce_func: 0,
            combine: false,
            input: input.to_vec(),
            input_profile: InputProfile::single_file(64),
            n_maps: 1,
            n_reduces: 1,
        }
    }

    #[test]
    fn empty_job_has_thirty_second_scale_floor() {
        // The paper's headline: a trivial job costs ~30 s on Hadoop.
        let program = Simple(WordCount);
        let input = spec_input(&["a b"]);
        let cluster = HadoopCluster::new(6, SimConfig::default()).unwrap();
        let report = cluster.run_job(&tiny_spec(&program, &input)).unwrap();
        let secs = report.total.as_secs_f64();
        assert!((18.0..45.0).contains(&secs), "job floor {secs}s");
    }

    #[test]
    fn output_is_correct_wordcount() {
        let program = Simple(WordCount);
        let input = spec_input(&["a b a", "c a b"]);
        let cluster = HadoopCluster::new(3, SimConfig::default()).unwrap();
        let mut spec = tiny_spec(&program, &input);
        spec.n_maps = 2;
        spec.n_reduces = 2;
        spec.combine = true;
        let report = cluster.run_job(&spec).unwrap();
        let mut counts: Vec<(String, u64)> = report
            .output
            .iter()
            .map(|(k, v)| (String::from_bytes(k).unwrap(), u64::from_bytes(v).unwrap()))
            .collect();
        counts.sort();
        assert_eq!(counts, vec![("a".into(), 3), ("b".into(), 2), ("c".into(), 1)]);
    }

    #[test]
    fn many_small_files_dominate_startup() {
        let program = Simple(WordCount);
        let input = spec_input(&["x"]);
        let cluster = HadoopCluster::new(21, SimConfig::default()).unwrap();
        let mut spec = tiny_spec(&program, &input);
        spec.input_profile = InputProfile { files: 31_173, directories: 7_000, bytes: 1_000 };
        let report = cluster.run_job(&spec).unwrap();
        let scan = report.input_scan.as_secs_f64();
        assert!(scan > 400.0, "scan {scan}s");
        assert!(report.input_scan > report.total / 2, "scan should dominate");
    }

    #[test]
    fn more_tasks_than_slots_takes_more_heartbeat_rounds() {
        let program = Simple(WordCount);
        let lines: Vec<String> = (0..64).map(|i| format!("w{i}")).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let input = spec_input(&refs);
        let cluster = HadoopCluster::new(2, SimConfig::default()).unwrap();
        let mut small = tiny_spec(&program, &input);
        small.n_maps = 2;
        let mut big = tiny_spec(&program, &input);
        big.n_maps = 32;
        let t_small = cluster.run_job(&small).unwrap().total;
        let t_big = cluster.run_job(&big).unwrap().total;
        // 32 maps on 2 nodes × 2 slots = 8 waves of JVM spawns vs 1.
        assert!(t_big > t_small + Duration::from_secs(5), "{t_small:?} vs {t_big:?}");
    }

    #[test]
    fn more_nodes_shorten_wide_jobs() {
        let program = Simple(WordCount);
        let lines: Vec<String> = (0..64).map(|i| format!("w{i} x y z")).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let input = spec_input(&refs);
        let mut spec = tiny_spec(&program, &input);
        spec.n_maps = 48;
        spec.n_reduces = 8;
        let t2 = HadoopCluster::new(2, SimConfig::default()).unwrap().run_job(&spec).unwrap().total;
        let t12 =
            HadoopCluster::new(12, SimConfig::default()).unwrap().run_job(&spec).unwrap().total;
        assert!(t12 < t2, "{t12:?} !< {t2:?}");
    }

    #[test]
    fn combiner_reduces_shuffle_bytes() {
        let program = Simple(WordCount);
        let lines: Vec<String> = (0..50).map(|_| "same same same".to_string()).collect();
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let input = spec_input(&refs);
        let cluster = HadoopCluster::new(3, SimConfig::default()).unwrap();
        let mut with = tiny_spec(&program, &input);
        with.n_maps = 5;
        with.combine = true;
        let mut without = tiny_spec(&program, &input);
        without.n_maps = 5;
        without.combine = false;
        let b_with = cluster.run_job(&with).unwrap().shuffle_bytes;
        let b_without = cluster.run_job(&without).unwrap().shuffle_bytes;
        assert!(b_with < b_without / 10, "{b_with} vs {b_without}");
    }

    #[test]
    fn invalid_specs_rejected() {
        let program = Simple(WordCount);
        let input = spec_input(&["x"]);
        assert!(HadoopCluster::new(0, SimConfig::default()).is_err());
        let cluster = HadoopCluster::new(1, SimConfig::default()).unwrap();
        let mut spec = tiny_spec(&program, &input);
        spec.n_maps = 0;
        assert!(cluster.run_job(&spec).is_err());
    }

    #[test]
    fn phase_times_are_ordered() {
        let program = Simple(WordCount);
        let input = spec_input(&["a b c", "d e f"]);
        let cluster = HadoopCluster::new(4, SimConfig::default()).unwrap();
        let mut spec = tiny_spec(&program, &input);
        spec.n_maps = 2;
        spec.n_reduces = 2;
        let r = cluster.run_job(&spec).unwrap();
        assert!(r.input_scan <= r.maps_done_at);
        assert!(r.maps_done_at <= r.reduces_done_at);
        assert!(r.reduces_done_at <= r.total);
    }
}

#[cfg(test)]
mod speculation_tests {
    use super::*;
    use mrs_core::kv::encode_record;
    use mrs_core::{MapReduce, Simple};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A map that burns a measurable, deterministic amount of real time so
    /// map durations dominate the virtual timeline.
    struct SlowCount;

    impl MapReduce for SlowCount {
        type K1 = u64;
        type V1 = u64;
        type K2 = u64;
        type V2 = u64;

        fn map(&self, k: u64, v: u64, emit: &mut dyn FnMut(u64, u64)) {
            static SINK: AtomicU64 = AtomicU64::new(0);
            let mut acc = v;
            for i in 0..40_000u64 {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
            }
            SINK.store(acc, Ordering::Relaxed);
            emit(k % 4, 1);
        }

        fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
            emit(vs.sum());
        }
    }

    fn spec_input(n: u64) -> Vec<Record> {
        (0..n).map(|i| encode_record(&i, &i)).collect()
    }

    fn run_with(cfg: SimConfig) -> JobReport {
        let cluster = HadoopCluster::new(6, cfg).unwrap();
        let program = Simple(SlowCount);
        cluster
            .run_job(&JobSpec {
                program: &program,
                map_func: 0,
                reduce_func: 0,
                combine: false,
                input: spec_input(48),
                input_profile: InputProfile::single_file(1 << 20),
                n_maps: 24,
                n_reduces: 4,
            })
            .unwrap()
    }

    fn straggler_cfg(speculative: bool) -> SimConfig {
        SimConfig {
            straggler_prob: 0.2,
            straggler_factor: 12.0,
            speculative,
            // Make map durations dominate so stragglers matter: cheap task
            // startup relative to the long straggler tail.
            jvm_spawn: Duration::from_millis(500),
            ..SimConfig::default()
        }
    }

    #[test]
    fn stragglers_slow_the_job_down() {
        let clean = run_with(SimConfig { speculative: false, ..straggler_cfg(false) });
        let no_stragglers = run_with(SimConfig { straggler_prob: 0.0, ..straggler_cfg(false) });
        assert!(
            clean.total > no_stragglers.total,
            "{:?} !> {:?}",
            clean.total,
            no_stragglers.total
        );
    }

    #[test]
    fn speculation_recovers_straggler_time() {
        let without = run_with(straggler_cfg(false));
        let with = run_with(straggler_cfg(true));
        assert!(with.speculative_launched > 0, "no backups launched");
        assert!(
            with.total < without.total,
            "speculation did not help: {:?} vs {:?}",
            with.total,
            without.total
        );
        // Output identical either way (first-finisher-wins is harmless for
        // deterministic tasks).
        assert_eq!(with.output, without.output);
    }

    #[test]
    fn no_stragglers_means_no_backups() {
        let report =
            run_with(SimConfig { straggler_prob: 0.0, speculative: true, ..straggler_cfg(true) });
        assert_eq!(report.speculative_launched, 0, "speculated without cause");
    }
}
