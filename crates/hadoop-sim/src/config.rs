//! Calibrated simulation constants.
//!
//! Defaults are chosen so the *mechanisms* reproduce the paper's two
//! headline Hadoop measurements:
//!
//! * an empty (trivial-compute) job costs ≈30 s end to end — the floor the
//!   paper measured with PiEstimator at small sample counts (Fig. 3), and
//! * staging 31,173 small files into HDFS costs ≈9 minutes (§V-B
//!   WordCount), dominated by per-file namenode round-trips.
//!
//! Individual constants come from MR1-era Hadoop behaviour: 3 s minimum
//! TaskTracker heartbeat, several seconds of task-JVM launch plus job-jar
//! localization per attempt, dedicated setup/cleanup tasks, and a JobClient
//! that polls job state every 5 s.

use std::time::Duration;

/// Tunable constants for the Hadoop simulation.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// TaskTracker heartbeat interval: tasks are granted and completions
    /// observed only on heartbeats (MR1 default minimum: 3 s).
    pub heartbeat: Duration,
    /// Cost of launching a task attempt: JVM start plus task localization
    /// (fetching and unpacking the job jar) — no JVM reuse, the MR1 default.
    pub jvm_spawn: Duration,
    /// One namenode metadata round-trip (open/list/create).
    pub namenode_op: Duration,
    /// Client-side job submission overhead before the JobTracker sees the
    /// job (staging the job jar/xml, scheduling initialization).
    pub submit_overhead: Duration,
    /// JobClient completion-poll interval (the old JobClient polled job
    /// status every 5 s).
    pub client_poll: Duration,
    /// In-JVM fixed task overhead besides the JVM itself (task
    /// initialization, committer, progress reporting).
    pub task_overhead: Duration,
    /// Map slots per TaskTracker (MR1 default 2).
    pub map_slots: usize,
    /// Reduce slots per TaskTracker (MR1 default 2).
    pub reduce_slots: usize,
    /// HDFS bulk write/read bandwidth per node, bytes/s.
    pub disk_bytes_per_sec: f64,
    /// Shuffle (map→reduce copy) bandwidth per reduce, bytes/s.
    pub shuffle_bytes_per_sec: f64,
    /// Multiplier applied to *measured* user compute time before adding it
    /// to the virtual timeline (1.0 = the kernel's real speed).
    pub compute_scale: f64,
    /// Fraction of map-task attempts that straggle (0.0 = none).
    pub straggler_prob: f64,
    /// Duration multiplier for a straggling attempt (≥ 1.0).
    pub straggler_factor: f64,
    /// Enable MR1-style speculative execution: when the map queue drains,
    /// slow running maps get a backup attempt; first finisher wins.
    pub speculative: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            heartbeat: Duration::from_secs(3),
            jvm_spawn: Duration::from_millis(3500),
            namenode_op: Duration::from_millis(8),
            submit_overhead: Duration::from_millis(4500),
            client_poll: Duration::from_millis(5000),
            task_overhead: Duration::from_millis(400),
            map_slots: 2,
            reduce_slots: 2,
            disk_bytes_per_sec: 60e6,
            shuffle_bytes_per_sec: 40e6,
            compute_scale: 1.0,
            straggler_prob: 0.0,
            straggler_factor: 8.0,
            speculative: false,
        }
    }
}

impl SimConfig {
    /// Sanity-check the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat.is_zero() {
            return Err("heartbeat must be positive".into());
        }
        if self.map_slots == 0 || self.reduce_slots == 0 {
            return Err("slots must be positive".into());
        }
        for (name, v) in [
            ("disk_bytes_per_sec", self.disk_bytes_per_sec),
            ("shuffle_bytes_per_sec", self.shuffle_bytes_per_sec),
            ("compute_scale", self.compute_scale),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite"));
            }
        }
        if !(0.0..1.0).contains(&self.straggler_prob) {
            return Err("straggler_prob must be in [0, 1)".into());
        }
        if !(self.straggler_factor.is_finite() && self.straggler_factor >= 1.0) {
            return Err("straggler_factor must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SimConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SimConfig { heartbeat: Duration::ZERO, ..SimConfig::default() };
        assert!(c.validate().is_err());
        c = SimConfig { map_slots: 0, ..SimConfig::default() };
        assert!(c.validate().is_err());
        c = SimConfig { compute_scale: 0.0, ..SimConfig::default() };
        assert!(c.validate().is_err());
        c = SimConfig { disk_bytes_per_sec: f64::NAN, ..SimConfig::default() };
        assert!(c.validate().is_err());
        c = SimConfig { straggler_prob: 1.5, ..SimConfig::default() };
        assert!(c.validate().is_err());
        c = SimConfig { straggler_factor: 0.5, ..SimConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn calibration_headline_staging() {
        // Scanning 31,173 files costs ~2 namenode ops each plus directory
        // listings; the default per-op cost must land that total near the
        // paper's ~9 minute startup figure (see hdfs.rs for the full model).
        let c = SimConfig::default();
        let total = c.namenode_op * (2 * 31_173 + 7_000);
        let secs = total.as_secs_f64();
        assert!((450.0..640.0).contains(&secs), "staging metadata: {secs}s");
    }
}
