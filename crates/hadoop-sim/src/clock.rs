//! Virtual time for the discrete-event simulation.

use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// A point on the simulation's virtual timeline (nanoseconds since job
/// submission).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The origin.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from seconds.
    pub fn from_secs_f64(s: f64) -> SimTime {
        assert!(s >= 0.0 && s.is_finite(), "negative or non-finite time");
        SimTime((s * 1e9) as u64)
    }

    /// Convert to a `Duration`.
    pub fn as_duration(self) -> Duration {
        Duration::from_nanos(self.0)
    }

    /// Seconds as f64 (for reports and plots).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The next multiple of `interval` at or after `self`, given a fixed
    /// phase offset — when the next heartbeat of a tracker with offset
    /// `phase` occurs. `interval` must be nonzero.
    pub fn next_tick(self, interval: Duration, phase: Duration) -> SimTime {
        let interval = interval.as_nanos() as u64;
        assert!(interval > 0, "zero interval");
        let phase = phase.as_nanos() as u64 % interval;
        let t = self.0;
        if t <= phase {
            return SimTime(phase);
        }
        let since = t - phase;
        let ticks = since.div_ceil(interval);
        SimTime(phase + ticks * interval)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(rhs.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + Duration::from_secs(3);
        assert_eq!(t.as_secs_f64(), 3.0);
        assert_eq!(t - SimTime::from_secs_f64(1.0), Duration::from_secs(2));
    }

    #[test]
    fn next_tick_at_or_after() {
        let hb = Duration::from_secs(3);
        let none = Duration::ZERO;
        assert_eq!(SimTime::ZERO.next_tick(hb, none), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(0.1).next_tick(hb, none), SimTime::from_secs_f64(3.0));
        assert_eq!(SimTime::from_secs_f64(3.0).next_tick(hb, none), SimTime::from_secs_f64(3.0));
        assert_eq!(SimTime::from_secs_f64(3.1).next_tick(hb, none), SimTime::from_secs_f64(6.0));
    }

    #[test]
    fn next_tick_with_phase() {
        let hb = Duration::from_secs(3);
        let phase = Duration::from_secs(1);
        assert_eq!(SimTime::ZERO.next_tick(hb, phase), SimTime::from_secs_f64(1.0));
        assert_eq!(SimTime::from_secs_f64(1.5).next_tick(hb, phase), SimTime::from_secs_f64(4.0));
        assert_eq!(SimTime::from_secs_f64(4.0).next_tick(hb, phase), SimTime::from_secs_f64(4.0));
    }

    #[test]
    fn saturating_sub_never_panics() {
        assert_eq!(SimTime::ZERO - SimTime::from_secs_f64(5.0), Duration::ZERO);
    }
}
