//! Task-attempt tracing for Mrs jobs.
//!
//! A bounded, lock-cheap event recorder plus the machinery that turns raw
//! events into something a scientist can look at: cross-machine clock
//! mapping, Chrome trace-event JSON (viewable in Perfetto or
//! `chrome://tracing`), and an end-of-job critical-path sweep that
//! attributes wall-clock time to compute, shuffle wait, merge, and idle.
//!
//! Design constraints, in order:
//!
//! * **Never perturb the job.** Each recording thread owns its own shard
//!   (an uncontended `Mutex` around a fixed ring), so the hot path is a
//!   lock with no waiters plus a slot write — no allocation, no I/O.
//! * **Never grow without bound.** Rings have a fixed capacity; overflow
//!   overwrites the *oldest* events and counts every loss in
//!   `dropped_events` — a visible counter, not a silent cap.
//! * **No dependencies.** Standard library only, like the rest of the
//!   networking stack; the runtime and benches both link this crate.
//!
//! The span vocabulary is fixed (see [`Name`]) and shared by every
//! execution plane — serial, mock-parallel, thread pool, and the RPC
//! cluster all emit the same names, so serial-mode debugging keeps its
//! fidelity.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-shard ring capacity: 64k events ≈ 2 MiB per recording
/// thread, enough for hundreds of thousands of task phases between
/// drains on any realistic job.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Lane id used for a slave's input-prefetch thread.
pub const PREFETCH_LANE: u32 = 1_000;
/// Lane id used for a slave's eager-shuffle fetch thread.
pub const EAGER_LANE: u32 = 1_001;
/// Lane id used for a slave's poll/main loop.
pub const POLL_LANE: u32 = 1_002;
/// Chrome `pid` of the master's timeline; slave `s` renders as `s + 1`.
pub const MASTER_PID: u32 = 0;

/// What a trace event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kind {
    /// A span opens at this instant (Chrome `B`).
    Begin,
    /// The innermost open span of this name closes (Chrome `E`).
    End,
    /// A point event (Chrome `i`).
    Instant,
}

impl Kind {
    /// Compact wire code.
    pub fn code(self) -> u8 {
        match self {
            Kind::Begin => 0,
            Kind::End => 1,
            Kind::Instant => 2,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u8) -> Option<Kind> {
        match c {
            0 => Some(Kind::Begin),
            1 => Some(Kind::End),
            2 => Some(Kind::Instant),
            _ => None,
        }
    }
}

/// The span/event vocabulary — identical on every execution plane.
///
/// Spans (`Begin`/`End` pairs): [`Name::Attempt`] wraps one task attempt
/// on its worker lane; [`Name::Fetch`], [`Name::Merge`], [`Name::Exec`],
/// and [`Name::Emit`] are its phases (input transfer, merge-ready input
/// assembly, the map/reduce kernel, output encode+publish).
///
/// Instants: [`Name::Dispatch`] and [`Name::Report`] bracket the
/// master's view of an attempt; [`Name::Speculate`] marks a backup
/// launch; [`Name::Cancel`] marks an attempt aborted (master side: the
/// order was issued; slave side: the worker actually stopped — a
/// cancelled attempt emits `Cancel` instead of a `Report`);
/// [`Name::EagerFetch`] marks a map-output fragment staged ahead of the
/// barrier and [`Name::Premerge`] a background pre-merge of warm
/// fragments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Name {
    /// One task attempt, dequeue → report, on its worker lane.
    Attempt,
    /// Input transfer (cold fetches at task time, or prefetch-lane work).
    Fetch,
    /// The task kernel (map, reduce, or fused reduce+map).
    Exec,
    /// Merge-ready input assembly for reduce-like tasks.
    Merge,
    /// Output bucket encode + publish.
    Emit,
    /// Master handed the attempt to a slave.
    Dispatch,
    /// The attempt's completion committed at the master.
    Report,
    /// The attempt was launched as a speculative backup.
    Speculate,
    /// The attempt was cancelled (no `Report` follows for it).
    Cancel,
    /// A map-output fragment was fetched ahead of the barrier.
    EagerFetch,
    /// Warm fragments were collapsed by the background pre-merge.
    Premerge,
}

impl Name {
    /// Stable lowercase name (Chrome event name, docs, tests).
    pub fn as_str(self) -> &'static str {
        match self {
            Name::Attempt => "attempt",
            Name::Fetch => "fetch",
            Name::Exec => "exec",
            Name::Merge => "merge",
            Name::Emit => "emit",
            Name::Dispatch => "dispatch",
            Name::Report => "report",
            Name::Speculate => "speculate",
            Name::Cancel => "cancel",
            Name::EagerFetch => "eager_fetch",
            Name::Premerge => "premerge",
        }
    }

    /// Compact wire code.
    pub fn code(self) -> u8 {
        match self {
            Name::Attempt => 0,
            Name::Fetch => 1,
            Name::Exec => 2,
            Name::Merge => 3,
            Name::Emit => 4,
            Name::Dispatch => 5,
            Name::Report => 6,
            Name::Speculate => 7,
            Name::Cancel => 8,
            Name::EagerFetch => 9,
            Name::Premerge => 10,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u8) -> Option<Name> {
        Some(match c {
            0 => Name::Attempt,
            1 => Name::Fetch,
            2 => Name::Exec,
            3 => Name::Merge,
            4 => Name::Emit,
            5 => Name::Dispatch,
            6 => Name::Report,
            7 => Name::Speculate,
            8 => Name::Cancel,
            9 => Name::EagerFetch,
            10 => Name::Premerge,
            _ => return None,
        })
    }
}

/// The operation kind a traced attempt belongs to (mirrors the runtime's
/// task kinds without depending on it).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Op {
    /// Not a task-scoped event.
    #[default]
    None,
    /// A map task.
    Map,
    /// A reduce task.
    Reduce,
    /// A fused reduce+map task.
    ReduceMap,
}

impl Op {
    /// Stable lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Op::None => "",
            Op::Map => "map",
            Op::Reduce => "reduce",
            Op::ReduceMap => "reducemap",
        }
    }

    /// Compact wire code.
    pub fn code(self) -> u8 {
        match self {
            Op::None => 0,
            Op::Map => 1,
            Op::Reduce => 2,
            Op::ReduceMap => 3,
        }
    }

    /// Decode a wire code.
    pub fn from_code(c: u8) -> Option<Op> {
        Some(match c {
            0 => Op::None,
            1 => Op::Map,
            2 => Op::Reduce,
            3 => Op::ReduceMap,
            _ => return None,
        })
    }
}

/// The task identity an event is about. All-zero [`Tag::NONE`] for
/// events that are not task-scoped.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub struct Tag {
    /// Operation kind of the task.
    pub op: Op,
    /// Output dataset id.
    pub data: u32,
    /// Task index within the dataset.
    pub index: u32,
    /// Attempt id (1-based; 0 when unknown).
    pub attempt: u32,
}

impl Tag {
    /// The non-task tag.
    pub const NONE: Tag = Tag { op: Op::None, data: 0, index: 0, attempt: 0 };

    /// A task-scoped tag.
    pub fn task(op: Op, data: u32, index: usize, attempt: u32) -> Tag {
        Tag { op, data, index: index as u32, attempt }
    }

    /// The identity triple (ignores `op`), for grouping an attempt's
    /// events across lanes and machines.
    pub fn key(&self) -> (u32, u32, u32) {
        (self.data, self.index, self.attempt)
    }
}

/// One trace event. `at_us` is microseconds since the recorder's epoch
/// (monotonic within a recorder; the master maps remote epochs onto its
/// own with [`ClockSync`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the recorder epoch.
    pub at_us: u64,
    /// Begin/End/Instant.
    pub kind: Kind,
    /// Vocabulary name.
    pub name: Name,
    /// Timeline lane: worker slot index, or one of the `*_LANE`
    /// constants; on master-recorded events, the slave id the event is
    /// about.
    pub lane: u32,
    /// Task identity (or [`Tag::NONE`]).
    pub tag: Tag,
}

/// Fixed-capacity ring that overwrites its *oldest* event on overflow
/// and counts every overwrite.
struct Ring {
    buf: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn new(capacity: usize) -> Ring {
        Ring { buf: Vec::new(), head: 0, capacity: capacity.max(1), dropped: 0 }
    }

    fn push(&mut self, e: Event) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events in insertion order (oldest first), leaving the ring empty.
    fn drain(&mut self) -> (Vec<Event>, u64) {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        self.buf.clear();
        self.head = 0;
        (out, std::mem::take(&mut self.dropped))
    }
}

struct Shard {
    ring: Mutex<Ring>,
}

struct RecorderInner {
    epoch: Instant,
    capacity: usize,
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Dropped counts already folded out of drained rings.
    drained_dropped: AtomicU64,
}

/// A job-scoped event recorder. Clone-cheap handle; threads register
/// their own [`TraceHandle`] (one shard each) and record through it, so
/// the hot path never contends. [`Recorder::drain`] merges every shard
/// into one time-sorted batch.
///
/// Deliberately an explicit object, not a process-global: parallel jobs
/// (and parallel tests) each get their own timeline.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<RecorderInner>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with the default per-shard capacity.
    pub fn new() -> Recorder {
        Recorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder whose shards each hold at most `capacity` events
    /// between drains.
    pub fn with_capacity(capacity: usize) -> Recorder {
        Recorder {
            inner: Arc::new(RecorderInner {
                epoch: Instant::now(),
                capacity,
                shards: Mutex::new(Vec::new()),
                drained_dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Microseconds since this recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.inner.epoch.elapsed().as_micros() as u64
    }

    /// Register a recording handle for timeline lane `lane` (a worker
    /// slot index or one of the `*_LANE` constants). Each handle owns
    /// its own shard; give each recording thread its own handle.
    pub fn handle(&self, lane: u32) -> TraceHandle {
        let shard = Arc::new(Shard { ring: Mutex::new(Ring::new(self.inner.capacity)) });
        self.inner.shards.lock().unwrap().push(Arc::clone(&shard));
        TraceHandle { shard, epoch: self.inner.epoch, lane, last_us: AtomicU64::new(0) }
    }

    /// Take every recorded event (sorted by timestamp) plus the number
    /// of events lost to ring overflow since the last drain. Rings are
    /// left empty; handles keep recording.
    pub fn drain(&self) -> (Vec<Event>, u64) {
        let shards: Vec<Arc<Shard>> = self.inner.shards.lock().unwrap().clone();
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for shard in shards {
            let (mut ev, d) = shard.ring.lock().unwrap().drain();
            events.append(&mut ev);
            dropped += d;
        }
        self.inner.drained_dropped.fetch_add(dropped, Ordering::Relaxed);
        events.sort_by_key(|e| e.at_us);
        (events, dropped)
    }

    /// Total events lost to ring overflow over this recorder's lifetime
    /// (drained and still-pending losses both included).
    pub fn dropped_events(&self) -> u64 {
        let pending: u64 =
            self.inner.shards.lock().unwrap().iter().map(|s| s.ring.lock().unwrap().dropped).sum();
        self.inner.drained_dropped.load(Ordering::Relaxed) + pending
    }
}

/// A per-thread recording handle (one ring shard). Timestamps are
/// clamped monotone per handle so a Begin backdated past the previous
/// event can never produce an out-of-order lane.
pub struct TraceHandle {
    shard: Arc<Shard>,
    epoch: Instant,
    lane: u32,
    last_us: AtomicU64,
}

impl TraceHandle {
    /// Microseconds since the parent recorder's epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn record(&self, at_us: u64, kind: Kind, name: Name, lane: u32, tag: Tag) {
        // Monotone clamp: max with the last timestamp this handle wrote.
        let prev = self.last_us.fetch_max(at_us, Ordering::Relaxed);
        let at_us = at_us.max(prev);
        self.shard.ring.lock().unwrap().push(Event { at_us, kind, name, lane, tag });
    }

    /// Open a span now.
    pub fn begin(&self, name: Name, tag: Tag) {
        self.record(self.now_us(), Kind::Begin, name, self.lane, tag);
    }

    /// Open a span at an explicit (earlier) timestamp — e.g. an attempt
    /// span reaching back to when its assignment arrived. Clamped so it
    /// never precedes this handle's previous event.
    pub fn begin_at(&self, at_us: u64, name: Name, tag: Tag) {
        self.record(at_us, Kind::Begin, name, self.lane, tag);
    }

    /// Close the innermost open span of `name`.
    pub fn end(&self, name: Name, tag: Tag) {
        self.record(self.now_us(), Kind::End, name, self.lane, tag);
    }

    /// Record a point event now.
    pub fn instant(&self, name: Name, tag: Tag) {
        self.record(self.now_us(), Kind::Instant, name, self.lane, tag);
    }

    /// Record a point event on an explicit lane — the master uses this
    /// to put dispatch/report instants on the lane of the slave they
    /// concern while sharing one handle across its RPC threads.
    pub fn instant_on(&self, lane: u32, name: Name, tag: Tag) {
        self.record(self.now_us(), Kind::Instant, name, lane, tag);
    }
}

/// Maps one remote recorder's epoch-relative timestamps onto the local
/// timeline, using offsets estimated from RPC round-trips.
///
/// Each trace batch a slave ships carries `sent_at_us` (its clock at
/// send time) and `rtt_us` (its measurement of the *previous* control
/// round-trip). On receipt the local side observes
/// `offset = local_now − rtt/2 − sent_at`, and keeps the estimate from
/// the smallest round-trip seen — the sample least inflated by queueing
/// (the classic NTP argument). [`ClockSync::map_monotone`] additionally
/// clamps mapped times to be non-decreasing, so an offset re-estimate
/// between batches can never fold a later event before an earlier one.
#[derive(Debug, Default)]
pub struct ClockSync {
    offset_us: i64,
    best_rtt_us: Option<u64>,
    last_mapped_us: u64,
}

impl ClockSync {
    /// A sync with no samples: remote times pass through unshifted.
    pub fn new() -> ClockSync {
        ClockSync::default()
    }

    /// Feed one batch arrival. Returns true when the offset estimate
    /// was updated (this sample's round-trip beat the best so far).
    pub fn observe(&mut self, sent_at_us: u64, rtt_us: u64, local_now_us: u64) -> bool {
        if self.best_rtt_us.is_some_and(|best| rtt_us > best) {
            return false;
        }
        self.best_rtt_us = Some(rtt_us);
        self.offset_us = local_now_us as i64 - (rtt_us / 2) as i64 - sent_at_us as i64;
        true
    }

    /// Map a remote timestamp onto the local timeline (saturating at 0).
    pub fn map(&self, remote_us: u64) -> u64 {
        (remote_us as i64).saturating_add(self.offset_us).max(0) as u64
    }

    /// Like [`ClockSync::map`], clamped so successive calls never go
    /// backwards. Feed events in remote-time order.
    pub fn map_monotone(&mut self, remote_us: u64) -> u64 {
        let mapped = self.map(remote_us).max(self.last_mapped_us);
        self.last_mapped_us = mapped;
        mapped
    }
}

/// An event placed on the job-wide timeline: `pid` is
/// [`MASTER_PID`] for master-recorded events and `slave + 1` for slave
/// `s`'s events (matching Chrome's process rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalEvent {
    /// Timeline process row.
    pub pid: u32,
    /// The event, with `at_us` already on the master clock.
    pub event: Event,
}

/// A whole job's assembled timeline plus its loss counter.
#[derive(Clone, Debug, Default)]
pub struct JobTrace {
    /// All events, master clock, sorted by timestamp.
    pub events: Vec<GlobalEvent>,
    /// Events lost to ring overflow anywhere in the job.
    pub dropped: u64,
}

fn pid_name(pid: u32) -> String {
    if pid == MASTER_PID {
        "master".to_owned()
    } else {
        format!("slave {}", pid - 1)
    }
}

fn lane_name(pid: u32, lane: u32) -> String {
    if pid == MASTER_PID {
        return format!("slave {lane}");
    }
    match lane {
        PREFETCH_LANE => "prefetch".to_owned(),
        EAGER_LANE => "eager".to_owned(),
        POLL_LANE => "poll".to_owned(),
        w => format!("worker {w}"),
    }
}

impl JobTrace {
    /// Assemble a timeline from a single-process recording (the serial
    /// and mock-parallel/pool planes, where the scheduler and the
    /// workers share one clock). Scheduler-side instants (Dispatch,
    /// Report, Speculate, Cancel) move to the master process row on lane
    /// 0 — the whole process plays "slave 0" — while execution spans
    /// keep their worker lane under pid 1, so [`coverage`](Self::coverage)
    /// and [`critical_path`](Self::critical_path) read these planes
    /// exactly like a one-slave cluster.
    pub fn from_local(events: Vec<Event>, dropped: u64) -> JobTrace {
        let events = events
            .into_iter()
            .map(|mut event| {
                let pid = match event.name {
                    Name::Dispatch | Name::Report | Name::Speculate | Name::Cancel => {
                        event.lane = 0;
                        MASTER_PID
                    }
                    _ => 1,
                };
                GlobalEvent { pid, event }
            })
            .collect();
        JobTrace { events, dropped }
    }

    /// Render as Chrome trace-event JSON (the array-of-events object
    /// form), loadable in Perfetto or `chrome://tracing`. One process
    /// row per machine, one lane per slave worker slot (plus the
    /// prefetch/eager/poll service lanes and the master's per-slave
    /// dispatch lanes).
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 96 + 256);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut seen: Vec<(u32, Option<u32>)> = Vec::new();
        let push = |out: &mut String, first: &mut bool, s: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(s);
        };
        // Metadata rows first: process and thread names.
        for e in &self.events {
            if !seen.contains(&(e.pid, None)) {
                seen.push((e.pid, None));
                push(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        e.pid,
                        pid_name(e.pid)
                    ),
                );
            }
            if !seen.contains(&(e.pid, Some(e.event.lane))) {
                seen.push((e.pid, Some(e.event.lane)));
                push(
                    &mut out,
                    &mut first,
                    &format!(
                        "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                         \"args\":{{\"name\":\"{}\"}}}}",
                        e.pid,
                        e.event.lane,
                        lane_name(e.pid, e.event.lane)
                    ),
                );
            }
        }
        for ge in &self.events {
            let e = &ge.event;
            let ph = match e.kind {
                Kind::Begin => "B",
                Kind::End => "E",
                Kind::Instant => "i",
            };
            let scope = if e.kind == Kind::Instant { ",\"s\":\"t\"" } else { "" };
            let args = if e.tag == Tag::NONE {
                String::new()
            } else {
                format!(
                    ",\"args\":{{\"op\":\"{}\",\"data\":{},\"index\":{},\"attempt\":{}}}",
                    e.tag.op.as_str(),
                    e.tag.data,
                    e.tag.index,
                    e.tag.attempt
                )
            };
            push(
                &mut out,
                &mut first,
                &format!(
                    "{{\"name\":\"{}\",\"ph\":\"{ph}\"{scope},\"ts\":{},\"pid\":{},\"tid\":{}{args}}}",
                    e.name.as_str(),
                    e.at_us,
                    ge.pid,
                    e.lane
                ),
            );
        }
        out.push_str("]}");
        out
    }

    /// Closed spans `(pid, interval)` for one vocabulary name. Spans a
    /// `Begin` opened but nothing closed are clipped at the last event
    /// timestamp (a cancelled attempt's phases still occupy time).
    fn spans_named(&self, want: Name) -> Vec<(u32, Tag, u64, u64)> {
        let end_ts = self.events.last().map(|e| e.event.at_us).unwrap_or(0);
        let mut open: Vec<(u32, u32, Tag, u64)> = Vec::new(); // pid, lane, tag, begin
        let mut out = Vec::new();
        for ge in &self.events {
            let e = &ge.event;
            if e.name != want {
                continue;
            }
            match e.kind {
                Kind::Begin => open.push((ge.pid, e.lane, e.tag, e.at_us)),
                Kind::End => {
                    // Innermost matching begin on the same pid+lane.
                    if let Some(pos) = open.iter().rposition(|(p, l, t, _)| {
                        *p == ge.pid && *l == e.lane && t.key() == e.tag.key()
                    }) {
                        let (pid, _, tag, begin) = open.remove(pos);
                        out.push((pid, tag, begin, e.at_us.max(begin)));
                    }
                }
                Kind::Instant => {}
            }
        }
        for (pid, _, tag, begin) in open {
            out.push((pid, tag, begin, end_ts.max(begin)));
        }
        out
    }

    /// Count events matching a predicate — test/assertion convenience.
    pub fn count(&self, f: impl Fn(&GlobalEvent) -> bool) -> usize {
        self.events.iter().filter(|e| f(e)).count()
    }

    /// Wall-clock attribution by a priority sweep over the global
    /// timeline; see [`PhaseTotals`].
    pub fn critical_path(&self) -> PhaseTotals {
        let (first, last) = match (self.events.first(), self.events.last()) {
            (Some(f), Some(l)) => (f.event.at_us, l.event.at_us),
            _ => return PhaseTotals::default(),
        };
        // Category priority (highest wins where spans overlap):
        // exec > fetch > merge > emit > idle. Exec splits by op kind at
        // bucket time.
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
        enum Cat {
            MapExec,
            ReduceExec,
            Fetch,
            Merge,
            Emit,
        }
        let mut edges: Vec<(u64, Cat, i32)> = Vec::new();
        for (name, fetch_cat) in [
            (Name::Exec, None),
            (Name::Fetch, Some(Cat::Fetch)),
            (Name::Merge, Some(Cat::Merge)),
            (Name::Emit, Some(Cat::Emit)),
        ] {
            for (_, tag, b, e) in self.spans_named(name) {
                let cat = fetch_cat.unwrap_or(if tag.op == Op::Map {
                    Cat::MapExec
                } else {
                    Cat::ReduceExec
                });
                edges.push((b, cat, 1));
                edges.push((e, cat, -1));
            }
        }
        edges.sort_by_key(|(t, c, d)| (*t, *c, -*d));
        let mut active = [0i32; 5];
        let mut totals = PhaseTotals { wall_us: last - first, ..PhaseTotals::default() };
        let mut cursor = first;
        let mut i = 0;
        while i < edges.len() {
            let t = edges[i].0;
            if t > cursor {
                let dt = t - cursor;
                let bucket = if active[Cat::MapExec as usize] > 0 {
                    &mut totals.map_exec_us
                } else if active[Cat::ReduceExec as usize] > 0 {
                    &mut totals.reduce_exec_us
                } else if active[Cat::Fetch as usize] > 0 {
                    &mut totals.fetch_us
                } else if active[Cat::Merge as usize] > 0 {
                    &mut totals.merge_us
                } else if active[Cat::Emit as usize] > 0 {
                    &mut totals.emit_us
                } else {
                    &mut totals.idle_us
                };
                *bucket += dt;
                cursor = t;
            }
            while i < edges.len() && edges[i].0 == t {
                active[edges[i].1 as usize] += edges[i].2;
                i += 1;
            }
        }
        if last > cursor {
            totals.idle_us += last - cursor;
        }
        totals
    }

    /// Per-attempt span coverage: for every attempt the master both
    /// dispatched and saw reported (its `Dispatch`/`Report` instants),
    /// the fraction of the dispatch→report interval covered by the union
    /// of that attempt's recorded spans (any lane, any machine).
    pub fn coverage(&self) -> Vec<AttemptCoverage> {
        // Master-side windows per attempt key.
        let mut windows: Vec<(Tag, u64, Option<u64>)> = Vec::new();
        for ge in &self.events {
            let e = &ge.event;
            if ge.pid != MASTER_PID || e.kind != Kind::Instant {
                continue;
            }
            match e.name {
                Name::Dispatch => windows.push((e.tag, e.at_us, None)),
                Name::Report => {
                    if let Some(w) = windows
                        .iter_mut()
                        .find(|(t, _, end)| t.key() == e.tag.key() && end.is_none())
                    {
                        w.2 = Some(e.at_us);
                    }
                }
                _ => {}
            }
        }
        // Attempt-phase spans per key.
        let mut spans: Vec<(Tag, u64, u64)> = Vec::new();
        for name in [Name::Attempt, Name::Fetch, Name::Exec, Name::Merge, Name::Emit] {
            for (_, tag, b, e) in self.spans_named(name) {
                spans.push((tag, b, e));
            }
        }
        let mut out = Vec::new();
        for (tag, d, r) in windows {
            let Some(r) = r else { continue };
            if r <= d {
                continue;
            }
            let mut mine: Vec<(u64, u64)> = spans
                .iter()
                .filter(|(t, _, _)| t.key() == tag.key())
                .map(|(_, b, e)| (b.max(&d).to_owned(), e.min(&r).to_owned()))
                .filter(|(b, e)| e > b)
                .collect();
            mine.sort_unstable();
            let mut covered = 0u64;
            let mut hi = d;
            for (b, e) in mine {
                let b = b.max(hi);
                if e > b {
                    covered += e - b;
                    hi = e;
                }
            }
            out.push(AttemptCoverage { tag, window_us: r - d, covered_us: covered });
        }
        out
    }
}

/// One attempt's span coverage of its master-side dispatch→report
/// window.
#[derive(Clone, Copy, Debug)]
pub struct AttemptCoverage {
    /// The attempt.
    pub tag: Tag,
    /// Dispatch→report, microseconds.
    pub window_us: u64,
    /// Microseconds of the window covered by the attempt's spans.
    pub covered_us: u64,
}

impl AttemptCoverage {
    /// Covered fraction in [0, 1].
    pub fn fraction(&self) -> f64 {
        if self.window_us == 0 {
            return 1.0;
        }
        self.covered_us as f64 / self.window_us as f64
    }
}

/// Wall-clock attribution from [`JobTrace::critical_path`]: every
/// microsecond of the traced window lands in exactly one bucket, chosen
/// by priority where phases overlap across lanes (exec beats fetch
/// beats merge beats emit beats idle), so the buckets always sum to
/// `wall_us` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// First event → last event.
    pub wall_us: u64,
    /// Some map-like kernel was running.
    pub map_exec_us: u64,
    /// Some reduce-like kernel was running (and no map).
    pub reduce_exec_us: u64,
    /// Input transfer was the best thing happening (shuffle wait).
    pub fetch_us: u64,
    /// Merge-ready input assembly was the best thing happening.
    pub merge_us: u64,
    /// Output encode/publish was the best thing happening.
    pub emit_us: u64,
    /// Nothing traced was running (barrier/dispatch idle).
    pub idle_us: u64,
}

impl PhaseTotals {
    /// The buckets, in priority order, as (label, µs).
    pub fn buckets(&self) -> [(&'static str, u64); 6] {
        [
            ("map compute", self.map_exec_us),
            ("reduce compute", self.reduce_exec_us),
            ("shuffle wait", self.fetch_us),
            ("merge", self.merge_us),
            ("emit", self.emit_us),
            ("idle", self.idle_us),
        ]
    }

    /// Human-readable critical-path report (one line per bucket).
    pub fn render(&self) -> String {
        let wall_ms = self.wall_us as f64 / 1000.0;
        let mut out = format!("critical path over {wall_ms:.1} ms traced:\n");
        for (label, us) in self.buckets() {
            let ms = us as f64 / 1000.0;
            let pct = if self.wall_us == 0 { 0.0 } else { 100.0 * us as f64 / self.wall_us as f64 };
            out.push_str(&format!("  {label:<14} {ms:>10.1} ms  {pct:>5.1}%\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: Kind, name: Name, lane: u32, tag: Tag) -> Event {
        Event { at_us, kind, name, lane, tag }
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let rec = Recorder::with_capacity(4);
        let h = rec.handle(0);
        for i in 0..7u64 {
            h.begin_at(i, Name::Exec, Tag::task(Op::Map, 0, i as usize, 1));
        }
        let (events, dropped) = rec.drain();
        assert_eq!(dropped, 3, "three oldest events overwritten");
        assert_eq!(rec.dropped_events(), 3);
        let indices: Vec<u32> = events.iter().map(|e| e.tag.index).collect();
        assert_eq!(indices, vec![3, 4, 5, 6], "oldest dropped, newest kept, order preserved");
        // Drained: the ring is empty and keeps accepting.
        let (events, dropped) = rec.drain();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
        h.instant(Name::Report, Tag::NONE);
        assert_eq!(rec.drain().0.len(), 1);
        assert_eq!(rec.dropped_events(), 3, "lifetime counter survives drains");
    }

    #[test]
    fn drain_merges_shards_sorted_by_time() {
        let rec = Recorder::new();
        let a = rec.handle(0);
        let b = rec.handle(1);
        a.begin_at(10, Name::Exec, Tag::NONE);
        b.begin_at(5, Name::Fetch, Tag::NONE);
        a.begin_at(20, Name::Emit, Tag::NONE);
        b.begin_at(15, Name::Merge, Tag::NONE);
        let (events, _) = rec.drain();
        let times: Vec<u64> = events.iter().map(|e| e.at_us).collect();
        assert_eq!(times, vec![5, 10, 15, 20]);
        assert_eq!(events[0].lane, 1);
        assert_eq!(events[1].lane, 0);
    }

    #[test]
    fn handle_timestamps_are_monotone_even_when_backdated() {
        let rec = Recorder::new();
        let h = rec.handle(2);
        h.begin_at(100, Name::Exec, Tag::NONE);
        // A backdated begin cannot rewind the lane.
        h.begin_at(50, Name::Fetch, Tag::NONE);
        let (events, _) = rec.drain();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.at_us == 100));
    }

    #[test]
    fn clock_sync_keeps_best_rtt_sample() {
        let mut c = ClockSync::new();
        // Slave clock is 1000µs behind master: true offset +1000.
        assert!(c.observe(500, 200, 1600)); // offset = 1600-100-500 = 1000
        assert_eq!(c.map(700), 1700);
        // A worse (queue-inflated) round trip must not disturb the estimate.
        assert!(!c.observe(900, 800, 2700));
        assert_eq!(c.map(700), 1700);
        // A better one refines it.
        assert!(c.observe(1500, 100, 2540)); // offset = 2540-50-1500 = 990
        assert_eq!(c.map(700), 1690);
    }

    #[test]
    fn clock_sync_mapping_is_monotone_across_offset_updates() {
        let mut c = ClockSync::new();
        c.observe(0, 100, 2000);
        let a = c.map_monotone(100);
        // The offset shrinks by more than the event spacing: an un-clamped
        // mapping would step backwards.
        c.observe(1000, 10, 2500);
        let b = c.map_monotone(110);
        let d = c.map_monotone(200);
        assert!(a <= b, "{a} > {b}");
        assert!(b <= d, "{b} > {d}");
        // Zero-sample sync passes through.
        let c2 = ClockSync::new();
        assert_eq!(c2.map(42), 42);
    }

    fn demo_trace() -> JobTrace {
        let tag = Tag::task(Op::Map, 1, 0, 1);
        let rtag = Tag::task(Op::Reduce, 2, 0, 1);
        JobTrace {
            events: vec![
                GlobalEvent {
                    pid: MASTER_PID,
                    event: ev(0, Kind::Instant, Name::Dispatch, 0, tag),
                },
                GlobalEvent { pid: 1, event: ev(10, Kind::Begin, Name::Attempt, 0, tag) },
                GlobalEvent { pid: 1, event: ev(10, Kind::Begin, Name::Fetch, 0, tag) },
                GlobalEvent { pid: 1, event: ev(30, Kind::End, Name::Fetch, 0, tag) },
                GlobalEvent { pid: 1, event: ev(30, Kind::Begin, Name::Exec, 0, tag) },
                GlobalEvent { pid: 1, event: ev(80, Kind::End, Name::Exec, 0, tag) },
                GlobalEvent { pid: 1, event: ev(80, Kind::Begin, Name::Emit, 0, tag) },
                GlobalEvent { pid: 1, event: ev(90, Kind::End, Name::Emit, 0, tag) },
                GlobalEvent { pid: 1, event: ev(95, Kind::End, Name::Attempt, 0, tag) },
                GlobalEvent {
                    pid: MASTER_PID,
                    event: ev(100, Kind::Instant, Name::Report, 0, tag),
                },
                GlobalEvent { pid: 2, event: ev(120, Kind::Begin, Name::Exec, 0, rtag) },
                GlobalEvent { pid: 2, event: ev(200, Kind::End, Name::Exec, 0, rtag) },
            ],
            dropped: 0,
        }
    }

    #[test]
    fn critical_path_buckets_sum_to_wall_exactly() {
        let t = demo_trace().critical_path();
        assert_eq!(t.wall_us, 200);
        assert_eq!(t.map_exec_us, 50);
        assert_eq!(t.reduce_exec_us, 80);
        assert_eq!(t.fetch_us, 20);
        assert_eq!(t.emit_us, 10);
        let sum: u64 = t.buckets().iter().map(|(_, us)| us).sum();
        assert_eq!(sum, t.wall_us, "sweep partitions every microsecond exactly once");
        assert!(t.render().contains("map compute"));
    }

    #[test]
    fn coverage_measures_dispatch_report_window() {
        let cov = demo_trace().coverage();
        assert_eq!(cov.len(), 1, "only the map attempt has both instants");
        let c = cov[0];
        assert_eq!(c.window_us, 100);
        // Attempt span [10, 95] covers the union of the phases.
        assert_eq!(c.covered_us, 85);
        assert!((c.fraction() - 0.85).abs() < 1e-9);
    }

    #[test]
    fn chrome_json_is_wellformed_and_named() {
        let json = demo_trace().chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"slave 0\""));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"op\":\"map\""));
        // Balanced braces/brackets — a cheap well-formedness check that
        // catches any comma/quote slip without a JSON parser dependency.
        let (mut braces, mut brackets) = (0i64, 0i64);
        let mut in_str = false;
        let mut prev = ' ';
        for ch in json.chars() {
            if in_str {
                if ch == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match ch {
                    '"' => in_str = true,
                    '{' => braces += 1,
                    '}' => braces -= 1,
                    '[' => brackets += 1,
                    ']' => brackets -= 1,
                    _ => {}
                }
            }
            prev = ch;
        }
        assert_eq!((braces, brackets), (0, 0));
    }

    #[test]
    fn codes_roundtrip() {
        for name in [
            Name::Attempt,
            Name::Fetch,
            Name::Exec,
            Name::Merge,
            Name::Emit,
            Name::Dispatch,
            Name::Report,
            Name::Speculate,
            Name::Cancel,
            Name::EagerFetch,
            Name::Premerge,
        ] {
            assert_eq!(Name::from_code(name.code()), Some(name));
        }
        for kind in [Kind::Begin, Kind::End, Kind::Instant] {
            assert_eq!(Kind::from_code(kind.code()), Some(kind));
        }
        for op in [Op::None, Op::Map, Op::Reduce, Op::ReduceMap] {
            assert_eq!(Op::from_code(op.code()), Some(op));
        }
        assert_eq!(Name::from_code(99), None);
        assert_eq!(Kind::from_code(99), None);
        assert_eq!(Op::from_code(99), None);
    }

    #[test]
    fn unclosed_span_is_clipped_at_trace_end() {
        let tag = Tag::task(Op::Map, 0, 0, 1);
        let t = JobTrace {
            events: vec![
                GlobalEvent { pid: 1, event: ev(0, Kind::Begin, Name::Exec, 0, tag) },
                GlobalEvent { pid: 1, event: ev(50, Kind::Instant, Name::Cancel, 0, tag) },
            ],
            dropped: 0,
        };
        let cp = t.critical_path();
        assert_eq!(cp.map_exec_us, 50);
        assert_eq!(cp.idle_us, 0);
    }
}
