//! **mrs** — a Rust reproduction of "Mrs: MapReduce for Scientific
//! Computing in Python" (SC 2012).
//!
//! This facade re-exports the workspace crates and hosts the example
//! applications the paper evaluates ([`apps`]): WordCount, the Halton
//! π estimator in several language tiers, and PSO (via [`mrs_pso`]).
//!
//! ```
//! use mrs::prelude::*;
//! use std::sync::Arc;
//!
//! let program = Arc::new(Simple(mrs::apps::wordcount::WordCount));
//! let mut rt = SerialRuntime::new(program);
//! let mut job = Job::new(&mut rt);
//! let input = mrs::apps::wordcount::lines_to_records(["to be or not to be"]);
//! let out = job.map_reduce(input, 1, 1, true).unwrap();
//! let counts = mrs::apps::wordcount::decode_counts(&out).unwrap();
//! assert_eq!(counts.get("to"), Some(&2));
//! ```

pub use corpus;
pub use hadoop_sim;
pub use mrs_core;
pub use mrs_fs;
pub use mrs_pso;
pub use mrs_rng;
pub use mrs_rpc;
pub use mrs_runtime;
pub use slowpy;

pub mod apps;

/// The common imports for writing and running Mrs programs.
pub mod prelude {
    pub use mrs_core::{Datum, Error, MapReduce, Program, Record, Result, Simple};
    pub use mrs_runtime::{
        CompressMode, ControlMode, DataId, DataPlane, Job, JobApi, LocalCluster, LocalRuntime,
        Master, MasterConfig, MergeMode, SerialRuntime, SlaveOptions, SpeculateMode,
    };
}
