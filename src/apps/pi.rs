//! The π estimator: quasi-Monte-Carlo over Halton sequences (§V-B,
//! Fig. 3), with the paper's four language tiers as selectable kernels.
//!
//! The MapReduce decomposition follows Hadoop's `PiEstimator`: the sample
//! range is cut into map tasks, each map counts how many of its points
//! fall inside the quarter circle, and a single reduce sums the counts.
//! All tiers compute the *identical* sequence of IEEE operations (direct
//! radical-inverse Halton), so their `inside` counts agree exactly — the
//! only difference is who executes the arithmetic:
//!
//! * [`Kernel::Native`] — plain Rust: the "C" tier,
//! * [`Kernel::TreeInterp`] — slowpy's AST walker: the "CPython" tier,
//! * [`Kernel::Bytecode`] — slowpy's VM: the "PyPy" tier,
//! * [`Kernel::Ctypes`] — slowpy calling a registered native for the
//!   whole inner loop, the paper's ctypes trick (Fig. 3b).

use mrs_core::kv::encode_record;
use mrs_core::{Datum, MapReduce, Record, Result};
use slowpy::{Engine, Value};

/// The slowpy source of the pure-interpreter kernels: direct radical-
/// inverse Halton, matching `native_count` operation for operation.
pub const SLOWPY_PI_SOURCE: &str = r#"
fn halton(i, base) {
  var f = 1.0;
  var r = 0.0;
  while (i > 0) {
    f = f / base;
    r = r + f * (i % base);
    i = i // base;
  }
  return r;
}

fn pi_count(start, n) {
  var inside = 0;
  var k = 0;
  while (k < n) {
    var idx = start + k + 1;
    var x = halton(idx, 2);
    var y = halton(idx, 3);
    if (x * x + y * y <= 1.0) {
      inside = inside + 1;
    }
    k = k + 1;
  }
  return inside;
}
"#;

/// The slowpy source of the ctypes tier: the interpreter only dispatches
/// one call; the loop body is native.
pub const SLOWPY_CTYPES_SOURCE: &str = r#"
fn pi_count(start, n) {
  return native_pi_count(start, n);
}
"#;

/// Which language tier executes the inner loop.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// Plain Rust ("C").
    Native,
    /// slowpy tree interpreter ("CPython").
    TreeInterp,
    /// slowpy bytecode VM ("PyPy").
    Bytecode,
    /// slowpy dispatching to a native inner loop ("Python + ctypes").
    Ctypes,
}

impl Kernel {
    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            Kernel::Native => "native",
            Kernel::TreeInterp => "tree",
            Kernel::Bytecode => "vm",
            Kernel::Ctypes => "ctypes",
        }
    }

    /// All tiers.
    pub fn all() -> [Kernel; 4] {
        [Kernel::Native, Kernel::TreeInterp, Kernel::Bytecode, Kernel::Ctypes]
    }
}

/// Count points of the Halton slab `[start+1, start+n]` inside the unit
/// quarter circle — the native tier, and the ground truth for the rest.
pub fn native_count(start: u64, n: u64) -> u64 {
    let mut inside = 0;
    for k in 0..n {
        let idx = start + k + 1;
        let x = mrs_rng::halton(idx, 2);
        let y = mrs_rng::halton(idx, 3);
        if x * x + y * y <= 1.0 {
            inside += 1;
        }
    }
    inside
}

/// Run a slab on the given tier.
pub fn kernel_count(kernel: Kernel, start: u64, n: u64) -> Result<u64> {
    let to_err = |e: slowpy::RuntimeError| mrs_core::Error::Invalid(format!("slowpy: {e}"));
    let count = match kernel {
        Kernel::Native => return Ok(native_count(start, n)),
        Kernel::TreeInterp => {
            let engine = Engine::new();
            let prog = slowpy::parse(SLOWPY_PI_SOURCE)
                .map_err(|e| mrs_core::Error::Invalid(e.to_string()))?;
            engine
                .run_tree(&prog, "pi_count", &[Value::Int(start as i64), Value::Int(n as i64)])
                .map_err(to_err)?
        }
        Kernel::Bytecode => {
            let engine = Engine::new();
            let prog = slowpy::parse(SLOWPY_PI_SOURCE)
                .map_err(|e| mrs_core::Error::Invalid(e.to_string()))?;
            engine
                .run_vm(&prog, "pi_count", &[Value::Int(start as i64), Value::Int(n as i64)])
                .map_err(to_err)?
        }
        Kernel::Ctypes => {
            let mut engine = Engine::new();
            engine.register("native_pi_count", |args| {
                let (Some(start), Some(n)) =
                    (args.first().and_then(Value::as_i64), args.get(1).and_then(Value::as_i64))
                else {
                    return Err(slowpy::RuntimeError("native_pi_count(start, n)".into()));
                };
                Ok(Value::Int(native_count(start as u64, n as u64) as i64))
            });
            let prog = slowpy::parse(SLOWPY_CTYPES_SOURCE)
                .map_err(|e| mrs_core::Error::Invalid(e.to_string()))?;
            engine
                .run_vm(&prog, "pi_count", &[Value::Int(start as i64), Value::Int(n as i64)])
                .map_err(to_err)?
        }
    };
    count
        .as_i64()
        .map(|i| i as u64)
        .ok_or_else(|| mrs_core::Error::Invalid("pi kernel returned non-int".into()))
}

/// The MapReduce program: map counts a slab, reduce sums `(inside, total)`
/// pairs under a single key.
pub struct PiEstimator {
    /// Language tier of the inner loop.
    pub kernel: Kernel,
}

impl MapReduce for PiEstimator {
    type K1 = u64; // task id
    type V1 = (u64, u64); // (start, count)
    type K2 = u64; // constant 0
    type V2 = (u64, u64); // (inside, total)

    fn map(&self, _task: u64, slab: (u64, u64), emit: &mut dyn FnMut(u64, (u64, u64))) {
        let (start, n) = slab;
        let inside = kernel_count(self.kernel, start, n).expect("pi kernel source is valid");
        emit(0, (inside, n));
    }

    fn reduce(
        &self,
        _key: &u64,
        values: &mut dyn Iterator<Item = (u64, u64)>,
        emit: &mut dyn FnMut((u64, u64)),
    ) {
        let (mut inside, mut total) = (0u64, 0u64);
        for (i, t) in values {
            inside += i;
            total += t;
        }
        emit((inside, total));
    }
}

/// Build the input records: `samples` points split over `tasks` slabs.
pub fn slabs(samples: u64, tasks: u64) -> Vec<Record> {
    assert!(tasks > 0, "need at least one task");
    let base = samples / tasks;
    let extra = samples % tasks;
    let mut records = Vec::with_capacity(tasks as usize);
    let mut start = 0u64;
    for t in 0..tasks {
        let n = base + u64::from(t < extra);
        records.push(encode_record(&t, &(start, n)));
        start += n;
    }
    records
}

/// Decode the single reduce output into the π estimate.
pub fn estimate_from(records: &[Record]) -> Result<f64> {
    let (mut inside, mut total) = (0u64, 0u64);
    for (_, v) in records {
        let (i, t) = <(u64, u64)>::from_bytes(v)?;
        inside += i;
        total += t;
    }
    if total == 0 {
        return Err(mrs_core::Error::Invalid("no samples".into()));
    }
    Ok(4.0 * inside as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::Simple;
    use mrs_runtime::{Job, LocalRuntime};
    use std::sync::Arc;

    #[test]
    fn all_tiers_agree_exactly() {
        for kernel in [Kernel::TreeInterp, Kernel::Bytecode, Kernel::Ctypes] {
            for (start, n) in [(0u64, 500u64), (1000, 250), (123, 77)] {
                assert_eq!(
                    kernel_count(kernel, start, n).unwrap(),
                    native_count(start, n),
                    "{kernel:?} slab ({start},{n})"
                );
            }
        }
    }

    #[test]
    fn slabs_cover_range_exactly() {
        let records = slabs(100, 7);
        assert_eq!(records.len(), 7);
        let mut expect_start = 0u64;
        let mut total = 0u64;
        for (_, v) in &records {
            let (start, n) = <(u64, u64)>::from_bytes(v).unwrap();
            assert_eq!(start, expect_start);
            expect_start += n;
            total += n;
        }
        assert_eq!(total, 100);
    }

    #[test]
    fn slab_decomposition_is_exact() {
        // Sum of slab counts == one big count (MapReduce correctness).
        let whole = native_count(0, 4_000);
        let parts: u64 = slabs(4_000, 5)
            .iter()
            .map(|(_, v)| {
                let (s, n) = <(u64, u64)>::from_bytes(v).unwrap();
                native_count(s, n)
            })
            .sum();
        assert_eq!(whole, parts);
    }

    #[test]
    fn mapreduce_pi_converges() {
        let program = Arc::new(Simple(PiEstimator { kernel: Kernel::Native }));
        let mut rt = LocalRuntime::pool(program, 4);
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(slabs(400_000, 16), 16, 1, false).unwrap();
        let pi = estimate_from(&out).unwrap();
        assert!((pi - std::f64::consts::PI).abs() < 5e-3, "pi = {pi}");
    }

    #[test]
    fn interpreted_mapreduce_matches_native() {
        let run = |kernel| {
            let program = Arc::new(Simple(PiEstimator { kernel }));
            let mut rt = LocalRuntime::pool(program, 2);
            let mut job = Job::new(&mut rt);
            let out = job.map_reduce(slabs(3_000, 4), 4, 1, false).unwrap();
            estimate_from(&out).unwrap()
        };
        let native = run(Kernel::Native);
        assert_eq!(native, run(Kernel::Bytecode));
        assert_eq!(native, run(Kernel::Ctypes));
    }

    #[test]
    fn zero_samples_is_an_error() {
        assert!(estimate_from(&[]).is_err());
    }
}
