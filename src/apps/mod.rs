//! The applications evaluated in the paper (§V).
//!
//! * [`wordcount`] — Program 1: the canonical WordCount,
//! * [`pi`] — the Hadoop-`PiEstimator`-style quasi-Monte-Carlo π
//!   estimator over Halton sequences, with selectable language tiers
//!   (native "C", slowpy bytecode "PyPy", slowpy tree "CPython", and the
//!   ctypes-style hybrid),
//! * [`kmeans`] — iterative Lloyd clustering (paper intro, ref \[2\]),
//! * [`logreg`] — batch logistic regression by MapReduce gradient descent
//!   (paper intro, ref \[3\]),
//! * [`gmm`] — expectation–maximization for Gaussian mixtures (paper
//!   intro, ref \[3\]),
//! * [`sort`] — TeraSort-style distributed sort with sampled range
//!   partitioning,
//! * [`grep`] — distributed grep (the original MapReduce paper's first
//!   example),
//! * PSO lives in its own crate, [`mrs_pso`].

pub mod gmm;
pub mod grep;
pub mod kmeans;
pub mod logreg;
pub mod pi;
pub mod sort;
pub mod wordcount;
