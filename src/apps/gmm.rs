//! Expectation–maximization for Gaussian mixtures as MapReduce — the last
//! of the paper-intro workloads we reproduce ("expectation maximization
//! \[3\]"). One MapReduce operation per EM iteration:
//!
//! * **map (E-step)**: each point's responsibilities under the current
//!   parameters, emitted as per-component sufficient statistics,
//! * **combine/reduce**: sufficient statistics summed per component,
//! * **driver (M-step)**: new weights, means, and (diagonal) variances
//!   from the summed statistics.
//!
//! EM's defining invariant — the data log-likelihood never decreases — is
//! asserted in the tests, which makes this a sharp end-to-end check of
//! the whole data plane (a single lost or duplicated record breaks
//! monotonicity immediately).

use mrs_core::kv::encode_record;
use mrs_core::{Datum, Error, MapReduce, Record, Result};
use mrs_rng::{Rng64, StreamFactory};
use mrs_runtime::Job;
use parking_lot::RwLock;

/// Per-component sufficient statistics plus a log-likelihood share.
#[derive(Clone, Debug, PartialEq)]
pub struct SuffStats {
    /// Σ r_i (total responsibility).
    pub resp: f64,
    /// Σ r_i · x_i.
    pub x_sum: Vec<f64>,
    /// Σ r_i · x_i² (per dimension).
    pub x2_sum: Vec<f64>,
    /// Σ log p(x_i) — only the component-0 record carries it, so the
    /// total is counted once per point.
    pub loglik: f64,
    /// Points contributing (component 0 only, same reason).
    pub count: u64,
}

impl Datum for SuffStats {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.resp.encode(buf);
        self.x_sum.encode(buf);
        self.x2_sum.encode(buf);
        self.loglik.encode(buf);
        self.count.encode(buf);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (resp, b) = f64::decode_from(b)?;
        let (x_sum, b) = Vec::<f64>::decode_from(b)?;
        let (x2_sum, b) = Vec::<f64>::decode_from(b)?;
        let (loglik, b) = f64::decode_from(b)?;
        let (count, b) = u64::decode_from(b)?;
        Ok((SuffStats { resp, x_sum, x2_sum, loglik, count }, b))
    }
}

/// Mixture parameters.
#[derive(Clone, Debug, PartialEq)]
pub struct GmmParams {
    /// Component weights (sum to 1).
    pub weights: Vec<f64>,
    /// Component means.
    pub means: Vec<Vec<f64>>,
    /// Diagonal variances.
    pub vars: Vec<Vec<f64>>,
}

/// Variance floor: prevents component collapse onto a single point.
const VAR_FLOOR: f64 = 1e-6;

/// The EM MapReduce program.
pub struct Gmm {
    params: RwLock<GmmParams>,
}

impl Gmm {
    /// Initialize from explicit means; unit variances, uniform weights.
    pub fn new(means: Vec<Vec<f64>>) -> Result<Gmm> {
        if means.is_empty() {
            return Err(Error::Invalid("need at least one component".into()));
        }
        let dim = means[0].len();
        if dim == 0 || means.iter().any(|m| m.len() != dim) {
            return Err(Error::Invalid("means must share a nonzero dimension".into()));
        }
        let k = means.len();
        Ok(Gmm {
            params: RwLock::new(GmmParams {
                weights: vec![1.0 / k as f64; k],
                vars: vec![vec![1.0; dim]; k],
                means,
            }),
        })
    }

    /// Current parameters.
    pub fn params(&self) -> GmmParams {
        self.params.read().clone()
    }

    /// log N(x | μ_j, σ²_j) for a diagonal Gaussian.
    fn log_gauss(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
        let mut acc = 0.0;
        for ((xi, mi), vi) in x.iter().zip(mean).zip(var) {
            let d = xi - mi;
            acc += -0.5 * ((std::f64::consts::TAU * vi).ln() + d * d / vi);
        }
        acc
    }

    /// Responsibilities and the point's log-likelihood.
    fn responsibilities(params: &GmmParams, x: &[f64]) -> (Vec<f64>, f64) {
        let logs: Vec<f64> = params
            .means
            .iter()
            .zip(&params.vars)
            .zip(&params.weights)
            .map(|((m, v), w)| w.max(1e-300).ln() + Self::log_gauss(x, m, v))
            .collect();
        // log-sum-exp
        let max = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let sum: f64 = logs.iter().map(|l| (l - max).exp()).sum();
        let loglik = max + sum.ln();
        let resp: Vec<f64> = logs.iter().map(|l| (l - loglik).exp()).collect();
        (resp, loglik)
    }

    /// One EM iteration over `data`; returns the mean log-likelihood of
    /// the *previous* parameters (the quantity EM never decreases).
    pub fn iterate(&self, job: &mut Job, data: mrs_runtime::DataId) -> Result<f64> {
        let k = self.params.read().weights.len();
        let mapped = job.map_data(data, 0, k, true)?;
        let reduced = job.reduce_data(mapped, 0)?;
        let out = job.fetch_all(reduced)?;
        job.discard(mapped);
        job.discard(reduced);

        let mut total_loglik = 0.0;
        let mut total_count = 0u64;
        let mut total_resp = 0.0;
        let mut params = self.params.write();
        let mut stats: Vec<Option<SuffStats>> = vec![None; k];
        for (kb, vb) in &out {
            let j = u64::from_bytes(kb)? as usize;
            let s = SuffStats::from_bytes(vb)?;
            total_loglik += s.loglik;
            total_count += s.count;
            total_resp += s.resp;
            stats[j] = Some(s);
        }
        if total_count == 0 {
            return Err(Error::Invalid("EM over empty data".into()));
        }
        for (j, s) in stats.iter().enumerate() {
            let Some(s) = s else { continue }; // dead component keeps params
            if s.resp < 1e-9 {
                continue;
            }
            params.weights[j] = s.resp / total_resp;
            params.means[j] = s.x_sum.iter().map(|v| v / s.resp).collect();
            params.vars[j] = s
                .x2_sum
                .iter()
                .zip(&params.means[j])
                .map(|(x2, m)| (x2 / s.resp - m * m).max(VAR_FLOOR))
                .collect();
        }
        Ok(total_loglik / total_count as f64)
    }

    /// Run `iters` EM iterations; returns the log-likelihood history.
    pub fn fit(
        &self,
        job: &mut Job,
        points: Vec<Record>,
        map_tasks: usize,
        iters: u64,
    ) -> Result<Vec<f64>> {
        let data = job.local_data(points, map_tasks)?;
        let mut history = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            history.push(self.iterate(job, data)?);
        }
        Ok(history)
    }
}

impl MapReduce for Gmm {
    type K1 = u64; // point id
    type V1 = Vec<f64>; // point
    type K2 = u64; // component id
    type V2 = SuffStats;

    fn map(&self, _id: u64, x: Vec<f64>, emit: &mut dyn FnMut(u64, SuffStats)) {
        let params = self.params.read();
        let (resp, loglik) = Self::responsibilities(&params, &x);
        for (j, r) in resp.iter().enumerate() {
            emit(
                j as u64,
                SuffStats {
                    resp: *r,
                    x_sum: x.iter().map(|xi| r * xi).collect(),
                    x2_sum: x.iter().map(|xi| r * xi * xi).collect(),
                    loglik: if j == 0 { loglik } else { 0.0 },
                    count: u64::from(j == 0),
                },
            );
        }
    }

    fn reduce(
        &self,
        _j: &u64,
        values: &mut dyn Iterator<Item = SuffStats>,
        emit: &mut dyn FnMut(SuffStats),
    ) {
        let mut acc: Option<SuffStats> = None;
        for s in values {
            match &mut acc {
                None => acc = Some(s),
                Some(a) => {
                    a.resp += s.resp;
                    for (x, y) in a.x_sum.iter_mut().zip(&s.x_sum) {
                        *x += y;
                    }
                    for (x, y) in a.x2_sum.iter_mut().zip(&s.x2_sum) {
                        *x += y;
                    }
                    a.loglik += s.loglik;
                    a.count += s.count;
                }
            }
        }
        if let Some(a) = acc {
            emit(a);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn partition(&self) -> mrs_core::partition::Partition {
        mrs_core::partition::Partition::Mod
    }
}

/// Two-component 1-up synthetic mixture data for tests and examples.
pub fn mixture_data(
    means: &[Vec<f64>],
    stds: &[f64],
    per_component: u64,
    seed: u64,
) -> Vec<Record> {
    assert_eq!(means.len(), stds.len());
    let streams = StreamFactory::new(seed);
    let mut records = Vec::new();
    let mut id = 0u64;
    for (c, (mean, std)) in means.iter().zip(stds).enumerate() {
        let mut rng = streams.stream(&[0x676d_6d00, c as u64]); // "gmm"
        for _ in 0..per_component {
            let x: Vec<f64> = mean.iter().map(|m| m + std * rng.normal()).collect();
            records.push(encode_record(&id, &x));
            id += 1;
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::Simple;
    use mrs_runtime::{LocalRuntime, SerialRuntime};
    use std::sync::Arc;

    fn truth_means() -> Vec<Vec<f64>> {
        vec![vec![-4.0, 0.0], vec![4.0, 2.0]]
    }

    #[test]
    fn loglik_is_monotone_nondecreasing() {
        // The EM guarantee — and a sharp data-plane integrity check.
        let data = mixture_data(&truth_means(), &[1.0, 1.0], 120, 3);
        let gmm = Arc::new(Simple(Gmm::new(vec![vec![-1.0, 0.0], vec![1.0, 0.0]]).unwrap()));
        let mut rt = LocalRuntime::pool(gmm.clone(), 4);
        let mut job = Job::new(&mut rt);
        let history = gmm.0.fit(&mut job, data, 3, 25).unwrap();
        for w in history.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "log-likelihood decreased: {w:?}");
        }
    }

    #[test]
    fn recovers_separated_components() {
        let data = mixture_data(&truth_means(), &[0.8, 0.8], 200, 11);
        let gmm = Arc::new(Simple(Gmm::new(vec![vec![-1.0, 1.0], vec![1.0, 1.0]]).unwrap()));
        let mut rt = LocalRuntime::pool(gmm.clone(), 4);
        let mut job = Job::new(&mut rt);
        gmm.0.fit(&mut job, data, 4, 60).unwrap();
        let params = gmm.0.params();
        let mut means = params.means.clone();
        means.sort_by(|a, b| a[0].total_cmp(&b[0]));
        for (found, truth) in means.iter().zip(truth_means().iter()) {
            for (f, t) in found.iter().zip(truth) {
                assert!((f - t).abs() < 0.3, "mean {found:?} vs {truth:?}");
            }
        }
        // Balanced data → roughly balanced weights.
        assert!((params.weights[0] - 0.5).abs() < 0.1, "{:?}", params.weights);
    }

    #[test]
    fn serial_and_pool_match_closely() {
        let data = mixture_data(&truth_means(), &[1.0, 1.0], 80, 5);
        let fit = |parallel: bool| {
            let gmm = Arc::new(Simple(Gmm::new(vec![vec![-1.0, 0.5], vec![1.0, -0.5]]).unwrap()));
            if parallel {
                let mut rt = LocalRuntime::pool(gmm.clone(), 3);
                let mut job = Job::new(&mut rt);
                gmm.0.fit(&mut job, data.clone(), 5, 15).unwrap();
            } else {
                let mut rt = SerialRuntime::new(gmm.clone());
                let mut job = Job::new(&mut rt);
                gmm.0.fit(&mut job, data.clone(), 1, 15).unwrap();
            }
            gmm.0.params()
        };
        let a = fit(false);
        let b = fit(true);
        for (x, y) in a.means.iter().flatten().zip(b.means.iter().flatten()) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn variance_floor_prevents_collapse() {
        // All points identical: variances must hit the floor, not zero/NaN.
        let point = vec![2.0, 2.0];
        let data: Vec<Record> = (0..20u64).map(|i| encode_record(&i, &point)).collect();
        let gmm = Arc::new(Simple(Gmm::new(vec![vec![0.0, 0.0], vec![4.0, 4.0]]).unwrap()));
        let mut rt = SerialRuntime::new(gmm.clone());
        let mut job = Job::new(&mut rt);
        gmm.0.fit(&mut job, data, 1, 10).unwrap();
        let params = gmm.0.params();
        for v in params.vars.iter().flatten() {
            assert!(*v >= VAR_FLOOR && v.is_finite());
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Gmm::new(vec![]).is_err());
        assert!(Gmm::new(vec![vec![]]).is_err());
        assert!(Gmm::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn suffstats_roundtrip() {
        let s = SuffStats {
            resp: 1.5,
            x_sum: vec![0.5, -1.0],
            x2_sum: vec![2.0, 3.0],
            loglik: -4.25,
            count: 7,
        };
        assert_eq!(SuffStats::from_bytes(&s.to_bytes()).unwrap(), s);
    }
}
