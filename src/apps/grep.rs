//! Distributed grep — the first example in Dean & Ghemawat's original
//! MapReduce paper (the paper's ref \[1\]): map emits the lines that
//! contain a pattern, keyed by line number so the reduce (identity)
//! returns matches in input order.

use mrs_core::{Datum, MapReduce, Record, Result};

/// The grep program: substring match, identity reduce.
pub struct Grep {
    /// The substring to search for.
    pub pattern: String,
}

impl MapReduce for Grep {
    type K1 = u64; // line number
    type V1 = String; // line
    type K2 = u64; // line number (so output can be re-ordered)
    type V2 = String; // matching line

    fn map(&self, line_no: u64, line: String, emit: &mut dyn FnMut(u64, String)) {
        if line.contains(&self.pattern) {
            emit(line_no, line);
        }
    }

    fn reduce(
        &self,
        _line_no: &u64,
        values: &mut dyn Iterator<Item = String>,
        emit: &mut dyn FnMut(String),
    ) {
        for line in values {
            emit(line);
        }
    }
}

/// Decode grep output into `(line_no, line)` pairs sorted by line number.
pub fn decode_matches(records: &[Record]) -> Result<Vec<(u64, String)>> {
    let mut out: Vec<(u64, String)> = records
        .iter()
        .map(|(k, v)| Ok((u64::from_bytes(k)?, String::from_bytes(v)?)))
        .collect::<Result<_>>()?;
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::wordcount::lines_to_records;
    use mrs_core::Simple;
    use mrs_runtime::{Job, LocalRuntime};
    use std::sync::Arc;

    fn run_grep(pattern: &str, lines: &[&str]) -> Vec<(u64, String)> {
        let program = Arc::new(Simple(Grep { pattern: pattern.to_owned() }));
        let mut rt = LocalRuntime::pool(program, 3);
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(lines_to_records(lines.iter().copied()), 3, 2, false).unwrap();
        decode_matches(&out).unwrap()
    }

    #[test]
    fn finds_matching_lines_in_order() {
        let lines = ["alpha beta", "gamma", "beta gamma", "delta"];
        let matches = run_grep("beta", &lines);
        assert_eq!(matches, vec![(0, "alpha beta".to_string()), (2, "beta gamma".to_string())]);
    }

    #[test]
    fn no_matches_is_empty() {
        assert!(run_grep("zzz", &["a", "b"]).is_empty());
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let lines = ["x", "y"];
        assert_eq!(run_grep("", &lines).len(), 2);
    }

    #[test]
    fn matches_agree_with_std_filter() {
        let corpus = corpus::Corpus::new(corpus::CorpusConfig {
            n_files: 3,
            mean_tokens: 200,
            vocab: 50,
            ..corpus::CorpusConfig::default()
        });
        let doc = corpus.document(0) + &corpus.document(1) + &corpus.document(2);
        let lines: Vec<&str> = doc.lines().collect();
        let pattern = "ba";
        let expected: Vec<String> =
            lines.iter().filter(|l| l.contains(pattern)).map(|l| l.to_string()).collect();
        let got: Vec<String> = run_grep(pattern, &lines).into_iter().map(|(_, l)| l).collect();
        assert_eq!(got, expected);
    }
}
