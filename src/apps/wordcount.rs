//! WordCount — the Rust rendering of the paper's Program 1.
//!
//! The whole program, like the Python version, is just a `map` that splits
//! lines and a `reduce` that sums; the reduce doubles as the combiner
//! without modification (§V-A).

use mrs_core::kv::encode_record;
use mrs_core::{Datum, MapReduce, Record, Result};
use std::collections::HashMap;

/// The WordCount program.
///
/// ```
/// use mrs_core::{MapReduce, Simple};
/// let p = mrs::apps::wordcount::WordCount;
/// let mut out = Vec::new();
/// p.map(0, "a b a".into(), &mut |w, c| out.push((w, c)));
/// assert_eq!(out.len(), 3);
/// ```
pub struct WordCount;

impl MapReduce for WordCount {
    type K1 = u64;
    type V1 = String;
    type K2 = String;
    type V2 = u64;

    fn map(&self, _line_no: u64, line: String, emit: &mut dyn FnMut(String, u64)) {
        for word in line.split_whitespace() {
            emit(word.to_owned(), 1);
        }
    }

    fn reduce(
        &self,
        _word: &String,
        counts: &mut dyn Iterator<Item = u64>,
        emit: &mut dyn FnMut(u64),
    ) {
        emit(counts.sum());
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Turn text lines into `(line_no, line)` input records.
pub fn lines_to_records<'a, I: IntoIterator<Item = &'a str>>(lines: I) -> Vec<Record> {
    lines.into_iter().enumerate().map(|(i, l)| encode_record(&(i as u64), &l.to_string())).collect()
}

/// Turn a whole multi-document corpus (name, text) list into records with
/// globally distinct line numbers.
pub fn documents_to_records<'a, I: IntoIterator<Item = &'a str>>(documents: I) -> Vec<Record> {
    let mut records = Vec::new();
    let mut next_line = 0u64;
    for doc in documents {
        for line in doc.lines() {
            records.push(encode_record(&next_line, &line.to_string()));
            next_line += 1;
        }
    }
    records
}

/// Decode WordCount output records into a count map.
pub fn decode_counts(records: &[Record]) -> Result<HashMap<String, u64>> {
    let mut out = HashMap::with_capacity(records.len());
    for (k, v) in records {
        out.insert(String::from_bytes(k)?, u64::from_bytes(v)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::Simple;
    use mrs_runtime::{Job, SerialRuntime};
    use std::sync::Arc;

    #[test]
    fn end_to_end_matches_reference() {
        let lines = ["the cat sat on the mat", "the end", ""];
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(lines_to_records(lines), 1, 2, true).unwrap();
        let counts = decode_counts(&out).unwrap();
        let reference = corpus::tokenizer::reference_counts(lines);
        assert_eq!(counts.len(), reference.len());
        for (w, c) in reference {
            assert_eq!(counts.get(&w), Some(&c), "word {w}");
        }
    }

    #[test]
    fn documents_get_distinct_line_numbers() {
        let records = documents_to_records(["a\nb\n", "c\n"]);
        assert_eq!(records.len(), 3);
        let keys: Vec<u64> = records.iter().map(|(k, _)| u64::from_bytes(k).unwrap()).collect();
        assert_eq!(keys, vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_empty_output() {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(vec![], 1, 1, false).unwrap();
        assert!(out.is_empty());
    }
}
