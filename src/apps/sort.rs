//! Distributed sort (TeraSort-style): the classic MapReduce benchmark
//! that needs *range* partitioning.
//!
//! Map is the identity; the work is in the partitioner: keys are routed
//! to partitions by sampled range boundaries so that partition `p`'s keys
//! all precede partition `p+1`'s. Each reduce then receives one key range,
//! and because the shuffle sorts within a partition, concatenating the
//! reduce outputs in partition order yields a *globally* sorted dataset —
//! no global sort ever runs anywhere.
//!
//! Keys are `u64`, whose big-endian `Datum` encoding makes byte order
//! equal numeric order (see `mrs_core::kv`), exactly the property the
//! shuffle sort needs.

use mrs_core::kv::encode_record;
use mrs_core::{Datum, Error, MapReduce, Record, Result};
use mrs_rng::{Rng64, SplitMix64};

/// The sort program: identity map/reduce plus range partitioning over
/// sampled boundaries.
pub struct RangeSort {
    /// Upper-exclusive encoded-key boundary of each partition except the
    /// last (ascending). `boundaries.len() + 1` = partition count the
    /// sampler planned for (the job may use fewer or equal `parts`).
    boundaries: Vec<Vec<u8>>,
}

impl RangeSort {
    /// Plan a sort into `parts` partitions from a sample of the input:
    /// boundaries are the `i·len/parts` quantiles of the sampled keys.
    pub fn plan(sample: &[Record], parts: usize) -> Result<RangeSort> {
        if parts == 0 {
            return Err(Error::Invalid("need at least one partition".into()));
        }
        let mut keys: Vec<Vec<u8>> = sample.iter().map(|(k, _)| k.clone()).collect();
        keys.sort();
        let boundaries = (1..parts)
            .map(|i| {
                let idx = (i * keys.len()) / parts;
                keys.get(idx).cloned().unwrap_or_default()
            })
            .collect();
        Ok(RangeSort { boundaries })
    }

    /// Draw a deterministic sample of about `n` records.
    pub fn sample(records: &[Record], n: usize, seed: u64) -> Vec<Record> {
        if records.len() <= n {
            return records.to_vec();
        }
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| records[rng.below(records.len() as u64) as usize].clone()).collect()
    }
}

impl MapReduce for RangeSort {
    type K1 = u64;
    type V1 = u64;
    type K2 = u64;
    type V2 = u64;

    fn map(&self, key: u64, value: u64, emit: &mut dyn FnMut(u64, u64)) {
        emit(key, value);
    }

    fn reduce(&self, _key: &u64, values: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
        for v in values {
            emit(v);
        }
    }

    fn custom_partition(&self, key: &[u8], parts: usize) -> Option<usize> {
        // First boundary strictly greater than the key names the partition.
        let planned = self.boundaries.partition_point(|b| b.as_slice() <= key);
        Some(planned.min(parts - 1))
    }
}

/// Build `(key, payload)` records from raw keys.
pub fn keyed_records(keys: &[u64]) -> Vec<Record> {
    keys.iter().map(|&k| encode_record(&k, &k)).collect()
}

/// Decode a sort output partition back to keys (in stored order).
pub fn decode_keys(records: &[Record]) -> Result<Vec<u64>> {
    records.iter().map(|(k, _)| u64::from_bytes(k)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::Simple;
    use mrs_runtime::{Job, LocalRuntime};
    use std::sync::Arc;

    fn scrambled(n: u64, seed: u64) -> Vec<u64> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(|_| rng.next_u64() % 10_000).collect()
    }

    /// Run the full distributed sort and return the concatenated output.
    fn dsort(keys: &[u64], parts: usize, workers: usize) -> Vec<u64> {
        let input = keyed_records(keys);
        let sample = RangeSort::sample(&input, 64, 42);
        let program = Arc::new(Simple(RangeSort::plan(&sample, parts).unwrap()));
        let mut rt = LocalRuntime::pool(program, workers);
        let mut job = Job::new(&mut rt);
        let src = job.local_data(input, workers.max(2)).unwrap();
        let m = job.map_data(src, 0, parts, false).unwrap();
        let r = job.reduce_data(m, 0).unwrap();
        // fetch_all concatenates partitions in order.
        decode_keys(&job.fetch_all(r).unwrap()).unwrap()
    }

    #[test]
    fn output_is_globally_sorted() {
        let keys = scrambled(2_000, 7);
        let out = dsort(&keys, 8, 4);
        assert_eq!(out.len(), keys.len());
        assert!(out.windows(2).all(|w| w[0] <= w[1]), "not globally sorted");
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(out, expected);
    }

    #[test]
    fn works_with_one_partition_and_many() {
        for parts in [1usize, 2, 5, 16] {
            let keys = scrambled(300, parts as u64);
            let out = dsort(&keys, parts, 3);
            assert!(out.windows(2).all(|w| w[0] <= w[1]), "parts={parts}");
        }
    }

    #[test]
    fn sampling_balances_partitions_roughly() {
        let keys = scrambled(4_000, 3);
        let input = keyed_records(&keys);
        let sample = RangeSort::sample(&input, 256, 1);
        let sorter = RangeSort::plan(&sample, 8).unwrap();
        let mut counts = vec![0usize; 8];
        for (k, _) in &input {
            counts[sorter.custom_partition(k, 8).unwrap()] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 4 + 64, "badly skewed: {counts:?}");
    }

    #[test]
    fn duplicate_heavy_input_sorts() {
        let keys: Vec<u64> = (0..500).map(|i| i % 7).collect();
        let out = dsort(&keys, 4, 3);
        assert!(out.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(
            out.iter().filter(|&&k| k == 3).count(),
            keys.iter().filter(|&&k| k == 3).count()
        );
    }

    #[test]
    fn empty_sample_still_plans() {
        let sorter = RangeSort::plan(&[], 4).unwrap();
        // Everything lands somewhere valid.
        for k in 0..100u64 {
            let p = sorter.custom_partition(&k.to_bytes(), 4).unwrap();
            assert!(p < 4);
        }
    }

    #[test]
    fn zero_partitions_rejected() {
        assert!(RangeSort::plan(&[], 0).is_err());
    }
}
