//! Iterative k-means clustering as MapReduce — the workload the paper's
//! introduction cites as a driver for scientific MapReduce ("it has been
//! used for iterative algorithms such as k-means [2]").
//!
//! Classic formulation: each map task assigns its points to the nearest
//! centroid and emits per-cluster partial sums; the combiner merges them
//! locally; each reduce computes one new centroid. The driver loop
//! updates the shared centroid table and resubmits until movement falls
//! below tolerance — the per-iteration overhead pattern Mrs optimizes.
//!
//! Centroids are broadcast through shared program state (an `RwLock`),
//! the in-process analogue of Hadoop's per-job configuration broadcast;
//! a fully distributed deployment would ship them in the job config.

use mrs_core::kv::encode_record;
use mrs_core::{Datum, Error, MapReduce, Record, Result};
use mrs_rng::{Rng64, StreamFactory};
use mrs_runtime::Job;
use parking_lot::RwLock;

/// Per-cluster partial aggregate: (vector sum, point count, inertia).
#[derive(Clone, Debug, PartialEq)]
pub struct Partial {
    /// Coordinate-wise sum of assigned points.
    pub sum: Vec<f64>,
    /// Number of assigned points.
    pub count: u64,
    /// Sum of squared distances to the assigned centroid.
    pub inertia: f64,
}

impl Datum for Partial {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.sum.encode(buf);
        self.count.encode(buf);
        self.inertia.encode(buf);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (sum, b) = Vec::<f64>::decode_from(b)?;
        let (count, b) = u64::decode_from(b)?;
        let (inertia, b) = f64::decode_from(b)?;
        Ok((Partial { sum, count, inertia }, b))
    }
}

/// The k-means MapReduce program. One instance drives all iterations; the
/// centroid table is updated between jobs by [`KMeans::run`].
pub struct KMeans {
    centroids: RwLock<Vec<Vec<f64>>>,
}

impl KMeans {
    /// Start from explicit initial centroids (all same dimension, k ≥ 1).
    pub fn new(initial: Vec<Vec<f64>>) -> Result<KMeans> {
        if initial.is_empty() {
            return Err(Error::Invalid("k must be at least 1".into()));
        }
        let dim = initial[0].len();
        if dim == 0 || initial.iter().any(|c| c.len() != dim) {
            return Err(Error::Invalid("centroids must share a nonzero dimension".into()));
        }
        Ok(KMeans { centroids: RwLock::new(initial) })
    }

    /// Current centroid table.
    pub fn centroids(&self) -> Vec<Vec<f64>> {
        self.centroids.read().clone()
    }

    /// Index and squared distance of the nearest centroid.
    fn nearest(centroids: &[Vec<f64>], point: &[f64]) -> (u64, f64) {
        let mut best = (0u64, f64::INFINITY);
        for (i, c) in centroids.iter().enumerate() {
            let d: f64 = c.iter().zip(point).map(|(a, b)| (a - b) * (a - b)).sum();
            if d < best.1 {
                best = (i as u64, d);
            }
        }
        best
    }

    /// One full Lloyd iteration over `points` via map+reduce on `job`.
    /// Returns (max centroid movement, total inertia).
    pub fn iterate(
        &self,
        job: &mut Job,
        points: mrs_runtime::DataId,
        map_tasks: usize,
    ) -> Result<(f64, f64)> {
        let k = self.centroids.read().len();
        let _ = map_tasks; // task count is fixed by the dataset's splits
        let mapped = job.map_data(points, 0, k, true)?;
        let reduced = job.reduce_data(mapped, 0)?;
        let out = job.fetch_all(reduced)?;
        job.discard(mapped);
        job.discard(reduced);

        let mut movement = 0.0f64;
        let mut inertia = 0.0f64;
        let mut table = self.centroids.write();
        for (kbytes, vbytes) in &out {
            let cluster = u64::from_bytes(kbytes)? as usize;
            let partial = Partial::from_bytes(vbytes)?;
            if partial.count == 0 {
                continue; // empty cluster keeps its old centroid
            }
            let new: Vec<f64> = partial.sum.iter().map(|s| s / partial.count as f64).collect();
            let moved: f64 =
                new.iter().zip(&table[cluster]).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
            movement = movement.max(moved);
            inertia += partial.inertia;
            table[cluster] = new;
        }
        Ok((movement, inertia))
    }

    /// Run Lloyd's algorithm until movement < `tol` or `max_iters`.
    /// Returns the per-iteration inertia history.
    pub fn run(
        &self,
        job: &mut Job,
        points: Vec<Record>,
        map_tasks: usize,
        tol: f64,
        max_iters: u64,
    ) -> Result<Vec<f64>> {
        let data = job.local_data(points, map_tasks)?;
        let mut history = Vec::new();
        for _ in 0..max_iters {
            let (movement, inertia) = self.iterate(job, data, map_tasks)?;
            history.push(inertia);
            if movement < tol {
                break;
            }
        }
        Ok(history)
    }
}

impl MapReduce for KMeans {
    type K1 = u64; // point id
    type V1 = Vec<f64>; // point
    type K2 = u64; // cluster id
    type V2 = Partial;

    fn map(&self, _id: u64, point: Vec<f64>, emit: &mut dyn FnMut(u64, Partial)) {
        let centroids = self.centroids.read();
        let (cluster, dist) = Self::nearest(&centroids, &point);
        emit(cluster, Partial { sum: point, count: 1, inertia: dist });
    }

    fn reduce(
        &self,
        _cluster: &u64,
        values: &mut dyn Iterator<Item = Partial>,
        emit: &mut dyn FnMut(Partial),
    ) {
        let mut acc: Option<Partial> = None;
        for p in values {
            match &mut acc {
                None => acc = Some(p),
                Some(a) => {
                    for (s, x) in a.sum.iter_mut().zip(&p.sum) {
                        *s += x;
                    }
                    a.count += p.count;
                    a.inertia += p.inertia;
                }
            }
        }
        if let Some(a) = acc {
            emit(a);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }

    fn partition(&self) -> mrs_core::partition::Partition {
        mrs_core::partition::Partition::Mod
    }
}

/// Generate `per_blob` points around each of `centers` with the given
/// Gaussian spread — deterministic synthetic clustering data.
pub fn gaussian_blobs(centers: &[Vec<f64>], per_blob: u64, spread: f64, seed: u64) -> Vec<Record> {
    let streams = StreamFactory::new(seed);
    let mut records = Vec::with_capacity(centers.len() * per_blob as usize);
    let mut id = 0u64;
    for (b, center) in centers.iter().enumerate() {
        let mut rng = streams.stream(&[0x626c_6f62, b as u64]); // "blob"
        for _ in 0..per_blob {
            let point: Vec<f64> = center.iter().map(|c| c + spread * rng.normal()).collect();
            records.push(encode_record(&id, &point));
            id += 1;
        }
    }
    records
}

/// Pick `k` initial centroids from the data (first point of every k-th
/// stride — deterministic, like sorted-sample init).
pub fn init_from_data(points: &[Record], k: usize) -> Result<Vec<Vec<f64>>> {
    if points.len() < k || k == 0 {
        return Err(Error::Invalid(format!("need at least {k} points")));
    }
    let stride = points.len() / k;
    (0..k).map(|i| Vec::<f64>::from_bytes(&points[i * stride].1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::Simple;
    use mrs_runtime::{LocalRuntime, SerialRuntime};
    use std::sync::Arc;

    fn blob_centers() -> Vec<Vec<f64>> {
        vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![-10.0, 8.0]]
    }

    fn run_kmeans(job: &mut Job, program: &KMeans, points: Vec<Record>) -> Vec<f64> {
        program.run(job, points, 4, 1e-6, 50).unwrap()
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let points = gaussian_blobs(&blob_centers(), 80, 0.5, 7);
        let program = Arc::new(Simple(KMeans::new(init_from_data(&points, 3).unwrap()).unwrap()));
        let mut rt = LocalRuntime::pool(program.clone(), 4);
        let mut job = Job::new(&mut rt);
        run_kmeans(&mut job, &program.0, points);

        let mut found = program.0.centroids();
        found.sort_by(|a, b| a[0].total_cmp(&b[0]));
        let mut expected = blob_centers();
        expected.sort_by(|a, b| a[0].total_cmp(&b[0]));
        for (f, e) in found.iter().zip(&expected) {
            for (x, y) in f.iter().zip(e) {
                assert!((x - y).abs() < 0.5, "centroid {f:?} vs {e:?}");
            }
        }
    }

    #[test]
    fn inertia_never_increases() {
        let points = gaussian_blobs(&blob_centers(), 50, 1.0, 3);
        let program = Arc::new(Simple(KMeans::new(init_from_data(&points, 3).unwrap()).unwrap()));
        let mut rt = SerialRuntime::new(program.clone());
        let mut job = Job::new(&mut rt);
        let history = run_kmeans(&mut job, &program.0, points);
        assert!(history.len() >= 2, "should take several iterations");
        for w in history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "inertia rose: {w:?}");
        }
    }

    #[test]
    fn serial_and_pool_agree() {
        let points = gaussian_blobs(&blob_centers(), 40, 0.8, 11);
        let run = |parallel: bool| {
            let program =
                Arc::new(Simple(KMeans::new(init_from_data(&points, 3).unwrap()).unwrap()));
            if parallel {
                let mut rt = LocalRuntime::pool(program.clone(), 4);
                let mut job = Job::new(&mut rt);
                run_kmeans(&mut job, &program.0, points.clone());
            } else {
                let mut rt = SerialRuntime::new(program.clone());
                let mut job = Job::new(&mut rt);
                run_kmeans(&mut job, &program.0, points.clone());
            }
            program.0.centroids()
        };
        // Summation order differs between runtimes (different partial
        // groupings), so compare within float tolerance, not bitwise.
        let a = run(false);
        let b = run(true);
        for (x, y) in a.iter().flatten().zip(b.iter().flatten()) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        // A far-away centroid attracts nothing and must not move or NaN.
        let points = gaussian_blobs(&[vec![0.0, 0.0]], 30, 0.2, 5);
        let init = vec![vec![0.0, 0.0], vec![1e6, 1e6]];
        let program = Arc::new(Simple(KMeans::new(init.clone()).unwrap()));
        let mut rt = SerialRuntime::new(program.clone());
        let mut job = Job::new(&mut rt);
        run_kmeans(&mut job, &program.0, points);
        let got = program.0.centroids();
        assert_eq!(got[1], init[1], "empty cluster drifted");
        assert!(got[0].iter().all(|x| x.is_finite()));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(KMeans::new(vec![]).is_err());
        assert!(KMeans::new(vec![vec![]]).is_err());
        assert!(KMeans::new(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(init_from_data(&[], 2).is_err());
    }

    #[test]
    fn partial_roundtrips() {
        let p = Partial { sum: vec![1.5, -2.0], count: 7, inertia: 42.5 };
        assert_eq!(Partial::from_bytes(&p.to_bytes()).unwrap(), p);
    }
}
