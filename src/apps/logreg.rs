//! Batch logistic regression by gradient descent as MapReduce — another
//! of the iterative algorithms the paper's introduction cites (Chu et
//! al.'s "Map-Reduce for machine learning on multicore", ref \[3\]):
//! each map task computes the partial gradient of its data shard under
//! the current weights, the reduce sums partials, and the driver applies
//! the update — one MapReduce operation per gradient step, which is
//! precisely the shape that makes per-iteration framework overhead
//! matter.

use mrs_core::kv::encode_record;
use mrs_core::{Datum, Error, MapReduce, Record, Result};
use mrs_rng::{Rng64, StreamFactory};
use mrs_runtime::Job;
use parking_lot::RwLock;

/// Partial gradient: (gradient sum, example count, log-loss sum).
#[derive(Clone, Debug, PartialEq)]
pub struct GradPart {
    /// Coordinate-wise gradient contribution (includes bias as last slot).
    pub grad: Vec<f64>,
    /// Examples in this partial.
    pub count: u64,
    /// Summed log-loss.
    pub loss: f64,
}

impl Datum for GradPart {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.grad.encode(buf);
        self.count.encode(buf);
        self.loss.encode(buf);
    }
    fn decode_from(b: &[u8]) -> Result<(Self, &[u8])> {
        let (grad, b) = Vec::<f64>::decode_from(b)?;
        let (count, b) = u64::decode_from(b)?;
        let (loss, b) = f64::decode_from(b)?;
        Ok((GradPart { grad, count, loss }, b))
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// The logistic-regression MapReduce program. Weights (with a trailing
/// bias term) are broadcast through shared state and updated by the
/// driver between iterations, like [`crate::apps::kmeans::KMeans`].
pub struct LogReg {
    weights: RwLock<Vec<f64>>,
}

impl LogReg {
    /// Zero-initialized model for `dim` features (+ bias).
    pub fn new(dim: usize) -> Result<LogReg> {
        if dim == 0 {
            return Err(Error::Invalid("need at least one feature".into()));
        }
        Ok(LogReg { weights: RwLock::new(vec![0.0; dim + 1]) })
    }

    /// Current weights (last element is the bias).
    pub fn weights(&self) -> Vec<f64> {
        self.weights.read().clone()
    }

    /// Model output for a feature vector.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let w = self.weights.read();
        let z: f64 =
            w[..x.len()].iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>() + w[w.len() - 1];
        sigmoid(z)
    }

    /// One gradient step over `data` at learning rate `lr`. Returns the
    /// mean log-loss before the update.
    pub fn step(&self, job: &mut Job, data: mrs_runtime::DataId, lr: f64) -> Result<f64> {
        let mapped = job.map_data(data, 0, 1, true)?;
        let reduced = job.reduce_data(mapped, 0)?;
        let out = job.fetch_all(reduced)?;
        job.discard(mapped);
        job.discard(reduced);
        let [(_, v)] = out.as_slice() else {
            return Err(Error::Invalid(format!("expected 1 gradient record, got {}", out.len())));
        };
        let part = GradPart::from_bytes(v)?;
        if part.count == 0 {
            return Err(Error::Invalid("gradient over empty data".into()));
        }
        let n = part.count as f64;
        let mut w = self.weights.write();
        for (wi, g) in w.iter_mut().zip(&part.grad) {
            *wi -= lr * g / n;
        }
        Ok(part.loss / n)
    }

    /// Run `iters` gradient steps; returns the loss history.
    pub fn fit(
        &self,
        job: &mut Job,
        examples: Vec<Record>,
        map_tasks: usize,
        lr: f64,
        iters: u64,
    ) -> Result<Vec<f64>> {
        let data = job.local_data(examples, map_tasks)?;
        let mut history = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            history.push(self.step(job, data, lr)?);
        }
        Ok(history)
    }
}

impl MapReduce for LogReg {
    type K1 = u64; // example id
    type V1 = (f64, Vec<f64>); // (label in {0,1}, features)
    type K2 = u64; // constant 0
    type V2 = GradPart;

    fn map(&self, _id: u64, example: (f64, Vec<f64>), emit: &mut dyn FnMut(u64, GradPart)) {
        let (label, x) = example;
        let w = self.weights.read();
        let z: f64 =
            w[..x.len()].iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>() + w[w.len() - 1];
        let p = sigmoid(z);
        let err = p - label;
        let mut grad: Vec<f64> = x.iter().map(|xi| err * xi).collect();
        grad.push(err); // bias
        let eps = 1e-12;
        let loss = -(label * (p + eps).ln() + (1.0 - label) * (1.0 - p + eps).ln());
        emit(0, GradPart { grad, count: 1, loss });
    }

    fn reduce(
        &self,
        _k: &u64,
        values: &mut dyn Iterator<Item = GradPart>,
        emit: &mut dyn FnMut(GradPart),
    ) {
        let mut acc: Option<GradPart> = None;
        for p in values {
            match &mut acc {
                None => acc = Some(p),
                Some(a) => {
                    for (g, x) in a.grad.iter_mut().zip(&p.grad) {
                        *g += x;
                    }
                    a.count += p.count;
                    a.loss += p.loss;
                }
            }
        }
        if let Some(a) = acc {
            emit(a);
        }
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Two separable Gaussian classes: label 1 around `+center`, label 0
/// around `-center`. Deterministic.
pub fn two_class_data(dim: usize, per_class: u64, center: f64, seed: u64) -> Vec<Record> {
    let streams = StreamFactory::new(seed);
    let mut records = Vec::with_capacity(2 * per_class as usize);
    let mut id = 0u64;
    for (label, sign) in [(1.0f64, 1.0f64), (0.0, -1.0)] {
        let mut rng = streams.stream(&[0x6c72_6461, label as u64]); // "lrda"
        for _ in 0..per_class {
            let x: Vec<f64> = (0..dim).map(|_| sign * center + rng.normal()).collect();
            records.push(encode_record(&id, &(label, x)));
            id += 1;
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrs_core::Simple;
    use mrs_runtime::{LocalRuntime, SerialRuntime};
    use std::sync::Arc;

    fn accuracy(model: &LogReg, data: &[Record]) -> f64 {
        let mut correct = 0usize;
        for (_, v) in data {
            let (label, x) = <(f64, Vec<f64>)>::from_bytes(v).unwrap();
            let p = model.predict(&x);
            if (p > 0.5) == (label > 0.5) {
                correct += 1;
            }
        }
        correct as f64 / data.len() as f64
    }

    #[test]
    fn learns_separable_classes() {
        let data = two_class_data(4, 150, 1.5, 9);
        let program = Arc::new(Simple(LogReg::new(4).unwrap()));
        let mut rt = LocalRuntime::pool(program.clone(), 4);
        let mut job = Job::new(&mut rt);
        let history = program.0.fit(&mut job, data.clone(), 4, 0.5, 60).unwrap();
        assert!(history.first().unwrap() > history.last().unwrap(), "{history:?}");
        assert!(accuracy(&program.0, &data) > 0.97);
    }

    #[test]
    fn loss_decreases_monotonically_with_small_lr() {
        let data = two_class_data(3, 80, 1.0, 4);
        let program = Arc::new(Simple(LogReg::new(3).unwrap()));
        let mut rt = SerialRuntime::new(program.clone());
        let mut job = Job::new(&mut rt);
        let history = program.0.fit(&mut job, data, 2, 0.1, 30).unwrap();
        for w in history.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "loss rose: {w:?}");
        }
    }

    #[test]
    fn serial_and_pool_agree_closely() {
        let data = two_class_data(3, 60, 1.2, 7);
        let fit = |parallel: bool| {
            let program = Arc::new(Simple(LogReg::new(3).unwrap()));
            if parallel {
                let mut rt = LocalRuntime::pool(program.clone(), 4);
                let mut job = Job::new(&mut rt);
                program.0.fit(&mut job, data.clone(), 5, 0.3, 20).unwrap();
            } else {
                let mut rt = SerialRuntime::new(program.clone());
                let mut job = Job::new(&mut rt);
                program.0.fit(&mut job, data.clone(), 1, 0.3, 20).unwrap();
            }
            program.0.weights()
        };
        for (a, b) in fit(false).iter().zip(fit(true).iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn gradpart_roundtrips() {
        let p = GradPart { grad: vec![0.5, -1.5], count: 3, loss: 2.25 };
        assert_eq!(GradPart::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn invalid_dim_rejected() {
        assert!(LogReg::new(0).is_err());
    }

    #[test]
    fn untrained_model_predicts_half() {
        let model = LogReg::new(2).unwrap();
        assert!((model.predict(&[3.0, -1.0]) - 0.5).abs() < 1e-12);
    }
}
