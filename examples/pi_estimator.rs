//! The π estimator of §V-B across all four language tiers.
//!
//! Usage:
//! ```text
//! cargo run --release --example pi_estimator [samples] [tasks] [workers]
//! ```
//!
//! Runs the identical Halton-sequence kernel as native Rust ("C"), slowpy
//! bytecode ("PyPy"), slowpy tree-walking ("CPython"), and slowpy+native
//! inner loop ("ctypes"), on the thread-pool runtime, and reports the
//! estimate and per-tier wall time — a single-machine rendering of Fig. 3.

use mrs::apps::pi::{estimate_from, slabs, Kernel, PiEstimator};
use mrs::prelude::*;
use mrs_runtime::LocalRuntime;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let samples: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200_000);
    let tasks: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!(
        "π by quasi-Monte-Carlo: {samples} Halton samples, {tasks} map tasks, {workers} workers\n"
    );
    println!("{:<10} {:>12} {:>14} {:>10}", "tier", "time (ms)", "estimate", "error");

    let mut reference: Option<f64> = None;
    for kernel in Kernel::all() {
        let program = Arc::new(Simple(PiEstimator { kernel }));
        let mut rt = LocalRuntime::pool(program, workers);
        let mut job = Job::new(&mut rt);
        let t0 = Instant::now();
        let out = job.map_reduce(slabs(samples, tasks), tasks as usize, 1, false)?;
        let elapsed = t0.elapsed();
        let pi = estimate_from(&out)?;
        println!(
            "{:<10} {:>12.1} {:>14.9} {:>10.2e}",
            kernel.name(),
            elapsed.as_secs_f64() * 1e3,
            pi,
            (pi - std::f64::consts::PI).abs()
        );
        match reference {
            None => reference = Some(pi),
            Some(r) => assert_eq!(r, pi, "tier {kernel:?} diverged — kernels must agree exactly"),
        }
    }
    println!("\nall tiers produced the identical estimate ✓");
    Ok(())
}
