//! The `mrs.main` pattern: one binary that runs the same WordCount under
//! any execution implementation chosen on the command line — the paper's
//! single-entry-point workflow (§IV-A).
//!
//! ```text
//! cargo run --release --example mrs_main                       # serial
//! cargo run --release --example mrs_main -- --mrs mock
//! cargo run --release --example mrs_main -- --mrs pool --mrs-workers 8
//! # terminal 1:
//! cargo run --release --example mrs_main -- --mrs master --mrs-port-file /tmp/mrs.port
//! # terminal 2..n:
//! cargo run --release --example mrs_main -- --mrs slave --mrs-master 127.0.0.1:$(cat /tmp/mrs.port)
//! ```

use mrs::apps::wordcount::{decode_counts, lines_to_records, WordCount};
use mrs::prelude::*;
use std::sync::Arc;

fn main() -> Result<()> {
    mrs_runtime::main_with(Arc::new(Simple(WordCount)), |job| {
        let lines = [
            "one entry point to rule them all",
            "the same program runs serial mock pool master or slave",
            "the implementation is a command line option",
        ];
        let out = job.map_reduce(lines_to_records(lines), 2, 2, true)?;
        let counts = decode_counts(&out)?;
        let mut sorted: Vec<(&String, &u64)> = counts.iter().collect();
        sorted.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        for (w, c) in sorted.iter().take(8) {
            println!("{c:>3}  {w}");
        }
        Ok(())
    })
}
