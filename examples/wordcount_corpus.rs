//! WordCount over a synthetic Gutenberg corpus, on Mrs (real cluster,
//! measured) and on the Hadoop simulator (virtual clock) — a scaled-down
//! rendering of the §V-B WordCount comparison.
//!
//! Usage:
//! ```text
//! cargo run --release --example wordcount_corpus [files] [slaves]
//! ```

use corpus::tree::{directory_count, Layout};
use corpus::{Corpus, CorpusConfig};
use hadoop_sim::cluster::JobSpec;
use hadoop_sim::hdfs::InputProfile;
use hadoop_sim::{HadoopCluster, SimConfig};
use mrs::apps::wordcount::{decode_counts, documents_to_records, WordCount};
use mrs::prelude::*;
use mrs_runtime::LocalCluster;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let files: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let slaves: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let corpus =
        Corpus::new(CorpusConfig { n_files: files, mean_tokens: 1_000, ..CorpusConfig::default() });
    let documents: Vec<String> = (0..files).map(|f| corpus.document(f)).collect();
    let bytes: u64 = documents.iter().map(|d| d.len() as u64).sum();
    let records = documents_to_records(documents.iter().map(String::as_str));
    println!(
        "corpus: {files} files, {} lines, {:.1} MB (nested tree: {} directories)\n",
        records.len(),
        bytes as f64 / 1e6,
        directory_count(Layout::Nested, files)
    );

    // Mrs: real master/slave cluster over localhost RPC, measured.
    let t0 = Instant::now();
    let counts = {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            slaves,
            DataPlane::Direct,
            MasterConfig::default(),
        )?;
        let mut job = Job::new(&mut cluster);
        let out = job.map_reduce(records.clone(), slaves * 4, slaves * 2, true)?;
        decode_counts(&out)?
    };
    let mrs_time = t0.elapsed();
    println!(
        "mrs ({slaves} slaves):   {:>8.2} s measured, {} distinct words",
        mrs_time.as_secs_f64(),
        counts.len()
    );

    // Hadoop baseline: the same job on the simulator, charged with the
    // nested-directory namenode traffic.
    let hadoop = HadoopCluster::new(slaves, SimConfig::default())?;
    let program = Simple(WordCount);
    let report = hadoop.run_job(&JobSpec {
        program: &program,
        map_func: 0,
        reduce_func: 0,
        combine: true,
        input: records,
        input_profile: InputProfile {
            files,
            directories: directory_count(Layout::Nested, files),
            bytes,
        },
        n_maps: slaves * 4,
        n_reduces: slaves * 2,
    })?;
    println!(
        "hadoop (simulated):  {:>8.2} s virtual  ({:.2} s of it input scan), {} distinct words",
        report.total.as_secs_f64(),
        report.input_scan.as_secs_f64(),
        decode_counts(&report.output)?.len()
    );
    assert_eq!(decode_counts(&report.output)?, counts, "frameworks disagree!");
    println!("\nboth frameworks produced identical counts ✓");
    println!(
        "speedup (shape, not absolute): {:.0}×",
        report.total.as_secs_f64() / mrs_time.as_secs_f64()
    );
    Ok(())
}
