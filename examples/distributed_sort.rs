//! TeraSort in miniature: globally sort scrambled keys on a real
//! master/slave cluster using sampled range partitioning — no node ever
//! sees more than its own partition, yet concatenating partition outputs
//! in order yields a fully sorted result.
//!
//! ```text
//! cargo run --release --example distributed_sort [keys] [partitions] [slaves]
//! ```

use mrs::apps::sort::{decode_keys, keyed_records, RangeSort};
use mrs::prelude::*;
use mrs_rng::SplitMix64;
use mrs_runtime::LocalCluster;
use std::sync::Arc;

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100_000);
    let parts: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let slaves: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let mut rng = SplitMix64::new(2026);
    let keys: Vec<u64> = (0..n).map(|_| rng.next_u64() >> 16).collect();
    let input = keyed_records(&keys);
    println!("sorting {n} keys into {parts} partitions on {slaves} slaves");

    // Plan boundaries from a small sample — the only centralized step.
    let sample = RangeSort::sample(&input, 1_024, 7);
    let program = Arc::new(Simple(RangeSort::plan(&sample, parts)?));

    let mut cluster =
        LocalCluster::start(program, slaves, DataPlane::Direct, MasterConfig::default())?;
    let mut job = Job::new(&mut cluster);
    let t0 = std::time::Instant::now();
    let src = job.local_data(input, slaves * 3)?;
    let m = job.map_data(src, 0, parts, false)?;
    let r = job.reduce_data(m, 0)?;
    let out = decode_keys(&job.fetch_all(r)?)?;
    let elapsed = t0.elapsed();

    assert_eq!(out.len(), keys.len());
    assert!(out.windows(2).all(|w| w[0] <= w[1]), "output not globally sorted!");
    let mut expected = keys;
    expected.sort_unstable();
    assert_eq!(out, expected, "sorted output diverged from std sort");
    println!(
        "globally sorted ✓ in {:.3} s ({:.0} keys/s)",
        elapsed.as_secs_f64(),
        n as f64 / elapsed.as_secs_f64()
    );
    Ok(())
}
