//! The paper's launch story (Program 3), reenacted: "When the master
//! starts, it writes its port to a file … A slave needs only the master's
//! address and port to connect."
//!
//! The master binds an ephemeral port and writes it to a port file; slave
//! threads discover the master *only* through that file — no daemons, no
//! configuration files, no fixed ports. On a real cluster the slave loop
//! below would run in processes started by PBS or pssh; the protocol and
//! sockets here are exactly the same.
//!
//! ```text
//! cargo run --release --example cluster_launch
//! ```

use mrs::apps::wordcount::{decode_counts, lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_runtime::distributed::{serve_master, RpcMasterLink};
use mrs_runtime::slave::{run_slave, SlaveOptions};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn main() -> Result<()> {
    let port_file = std::env::temp_dir().join(format!("mrs-port-{}", std::process::id()));

    // Step 2 of Program 3: start the master; it writes its port to a file.
    let master = Master::new(MasterConfig::default(), DataPlane::Direct)?;
    let server = serve_master(master.clone(), 0)?;
    std::fs::write(&port_file, server.port().to_string())?;
    println!("master listening on {}, port written to {}", server.authority(), port_file.display());

    // Steps 3–4: slaves wait for the port file and connect with only
    // host:port — the pssh/PBS part of the script.
    let stop = Arc::new(AtomicBool::new(false));
    let program: Arc<dyn Program> = Arc::new(Simple(WordCount));
    let slaves: Vec<_> = (0..3)
        .map(|i| {
            let port_file = port_file.clone();
            let program = Arc::clone(&program);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                // Wait for the master to announce itself.
                let port = loop {
                    if let Ok(text) = std::fs::read_to_string(&port_file) {
                        if let Ok(p) = text.trim().parse::<u16>() {
                            break p;
                        }
                    }
                    std::thread::sleep(std::time::Duration::from_millis(10));
                };
                println!("slave {i} connecting to 127.0.0.1:{port}");
                let link = RpcMasterLink::new(format!("127.0.0.1:{port}"));
                run_slave(&link, program, DataPlane::Direct, &SlaveOptions::default(), &stop)
            })
        })
        .collect();

    // Drive a job through the master.
    let mut driver = master.clone();
    let mut job = Job::new(&mut driver);
    let input = lines_to_records([
        "no daemons no configuration files no particular network ports",
        "a slave needs only the master address and port to connect",
    ]);
    let out = job.map_reduce(input, 2, 2, true)?;
    let counts = decode_counts(&out)?;
    println!("\ncounted {} distinct words; 'no' appears {} times", counts.len(), counts["no"]);

    master.finish();
    for s in slaves {
        s.join().expect("slave thread panicked")?;
    }
    let _ = std::fs::remove_file(&port_file);
    println!("clean shutdown ✓");
    Ok(())
}
