//! Quickstart: the paper's Program 1 (WordCount), run on all four
//! execution implementations — bypass, serial, mock parallel, and a real
//! master/slave cluster over XML-RPC — and checked for identical answers,
//! which is exactly the debugging discipline §IV-A prescribes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mrs::apps::wordcount::{decode_counts, lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_fs::{MemFs, Store};
use mrs_runtime::LocalCluster;
use std::collections::HashMap;
use std::sync::Arc;

const TEXT: &[&str] = &[
    "the quick brown fox jumps over the lazy dog",
    "the dog barks and the fox runs",
    "mapreduce makes the parallelism invisible",
];

fn main() -> Result<()> {
    // 1. Bypass: plain sequential code, no framework at all (§IV-A).
    let bypass: HashMap<String, u64> = corpus::tokenizer::reference_counts(TEXT.iter().copied());
    println!("bypass:        {} distinct words", bypass.len());

    // 2. Serial implementation.
    let serial = {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let mut job = Job::new(&mut rt);
        decode_counts(&job.map_reduce(lines_to_records(TEXT.iter().copied()), 1, 1, true)?)?
    };
    println!("serial:        {} distinct words", serial.len());

    // 3. Mock parallel: same task split as the cluster, one processor,
    //    intermediate data spilled to bucket files.
    let spill = Arc::new(MemFs::new());
    let mock = {
        let mut rt = LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), spill.clone());
        let mut job = Job::new(&mut rt);
        decode_counts(&job.map_reduce(lines_to_records(TEXT.iter().copied()), 2, 3, true)?)?
    };
    println!(
        "mock parallel: {} distinct words ({} debug bucket files)",
        mock.len(),
        spill.list("")?.len()
    );

    // 4. Master/slave over real localhost XML-RPC, direct HTTP data plane.
    let distributed = {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            3,
            DataPlane::Direct,
            MasterConfig::default(),
        )?;
        let mut job = Job::new(&mut cluster);
        decode_counts(&job.map_reduce(lines_to_records(TEXT.iter().copied()), 2, 3, true)?)?
    };
    println!("distributed:   {} distinct words", distributed.len());

    assert_eq!(bypass, serial, "serial diverged from bypass");
    assert_eq!(serial, mock, "mock parallel diverged");
    assert_eq!(mock, distributed, "distributed diverged");
    println!("\nall four implementations produced identical answers ✓");

    let mut top: Vec<(&String, &u64)> = serial.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    println!("\ntop words:");
    for (w, c) in top.iter().take(5) {
        println!("  {c:>3}  {w}");
    }
    Ok(())
}
