//! A **multi-process** Mrs cluster: the master in this process, slaves as
//! separate OS processes (this same binary re-executed with `MRS_ROLE=slave`),
//! all speaking real XML-RPC/HTTP over TCP — the closest single-machine
//! rendering of the paper's pssh-launched deployment (§IV: "starting one
//! copy of the program as a master and any number of other copies of the
//! program as slaves").
//!
//! ```text
//! cargo run --release --example process_cluster [n_slaves]
//! ```

use mrs::apps::wordcount::{decode_counts, lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_runtime::distributed::{serve_master, RpcMasterLink};
use mrs_runtime::slave::{run_slave, SlaveOptions};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

fn slave_main(master_authority: &str) -> Result<()> {
    // Identical program construction on both sides of the process
    // boundary — the paper's "same program, run as master or slave".
    let program: Arc<dyn Program> = Arc::new(Simple(WordCount));
    let link = RpcMasterLink::new(master_authority);
    let stop = AtomicBool::new(false);
    run_slave(&link, program, DataPlane::Direct, &SlaveOptions::default(), &stop)
}

fn main() -> Result<()> {
    // Slave role: connect to the master given in the environment and loop.
    if std::env::var("MRS_ROLE").as_deref() == Ok("slave") {
        let authority = std::env::var("MRS_MASTER")
            .map_err(|_| Error::Invalid("MRS_MASTER not set for slave role".into()))?;
        return slave_main(&authority);
    }

    let n_slaves: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(3);

    // Master role: bind, then spawn N copies of ourselves as slaves.
    let master = Master::new(MasterConfig::default(), DataPlane::Direct)?;
    let server = serve_master(master.clone(), 0)?;
    let authority = server.authority();
    println!("master: {authority} (pid {})", std::process::id());

    let exe = std::env::current_exe()?;
    let mut children: Vec<std::process::Child> = (0..n_slaves)
        .map(|i| {
            let child = std::process::Command::new(&exe)
                .env("MRS_ROLE", "slave")
                .env("MRS_MASTER", &authority)
                .spawn()
                .expect("spawn slave process");
            println!("slave {i}: pid {}", child.id());
            child
        })
        .collect();

    // Run a job across the processes.
    let lines: Vec<String> =
        (0..2_000).map(|i| format!("alpha beta w{} w{} gamma", i % 97, i % 31)).collect();
    let input = lines_to_records(lines.iter().map(String::as_str));
    let mut driver = master.clone();
    let t0 = std::time::Instant::now();
    let out = {
        let mut job = Job::new(&mut driver);
        job.map_reduce(input, n_slaves * 4, n_slaves * 2, true)?
    };
    let counts = decode_counts(&out)?;
    println!(
        "\ncounted {} distinct words across {} slave processes in {:.3} s",
        counts.len(),
        n_slaves,
        t0.elapsed().as_secs_f64()
    );
    assert_eq!(counts["alpha"], 2_000);

    // Shut down: slaves observe Exit on their next poll and terminate.
    master.finish();
    for mut child in children.drain(..) {
        let status = child.wait().expect("slave process wait");
        assert!(status.success(), "slave exited with {status}");
    }
    println!("all slave processes exited cleanly ✓");
    Ok(())
}
