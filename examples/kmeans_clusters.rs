//! Iterative k-means clustering via MapReduce — the paper-intro workload.
//!
//! Usage:
//! ```text
//! cargo run --release --example kmeans_clusters [points_per_blob] [spread] [workers]
//! ```
//!
//! Generates Gaussian blobs, clusters them with Lloyd's algorithm on the
//! thread-pool runtime, and prints the inertia trace and recovered
//! centroids.

use mrs::apps::kmeans::{gaussian_blobs, init_from_data, KMeans};
use mrs::prelude::*;
use mrs_runtime::LocalRuntime;
use std::sync::Arc;

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let per_blob: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let spread: f64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1.2);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let truth = vec![
        vec![0.0, 0.0, 0.0],
        vec![12.0, -3.0, 5.0],
        vec![-8.0, 9.0, 1.0],
        vec![4.0, 14.0, -7.0],
    ];
    let points = gaussian_blobs(&truth, per_blob, spread, 2024);
    println!(
        "{} points in {} blobs (spread {spread}), k-means on {workers} workers\n",
        points.len(),
        truth.len()
    );

    let program = Arc::new(Simple(KMeans::new(init_from_data(&points, truth.len())?)?));
    let mut rt = LocalRuntime::pool(program.clone(), workers);
    let t0 = std::time::Instant::now();
    let history = {
        let mut job = Job::new(&mut rt);
        program.0.run(&mut job, points, workers * 2, 1e-4, 100)?
    };
    let elapsed = t0.elapsed();

    println!("iteration  inertia");
    for (i, inertia) in history.iter().enumerate() {
        println!("{i:>9}  {inertia:.1}");
    }
    println!("\nconverged in {} iterations, {:.3} s total", history.len(), elapsed.as_secs_f64());
    println!("\nrecovered centroids (truth in parentheses):");
    let mut found = program.0.centroids();
    found.sort_by(|a, b| a[0].total_cmp(&b[0]));
    let mut truth_sorted = truth.clone();
    truth_sorted.sort_by(|a, b| a[0].total_cmp(&b[0]));
    for (f, t) in found.iter().zip(&truth_sorted) {
        let fs: Vec<String> = f.iter().map(|x| format!("{x:6.2}")).collect();
        let ts: Vec<String> = t.iter().map(|x| format!("{x:.0}")).collect();
        println!("  [{}]   ({})", fs.join(", "), ts.join(", "));
    }
    Ok(())
}
