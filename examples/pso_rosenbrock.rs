//! Particle Swarm Optimization on Rosenbrock-250 with Apiary-style
//! subswarms — the paper's flagship iterative workload (Fig. 4).
//!
//! Usage:
//! ```text
//! cargo run --release --example pso_rosenbrock [particles] [outer_iters] [inner_iters] [workers]
//! ```
//!
//! Runs the same deterministic swarm serially and as iterative MapReduce
//! on the thread-pool runtime, printing a convergence trace (best value vs
//! function evaluations and wall time) for both.

use mrs::prelude::*;
use mrs_pso::mapreduce::PsoProgram;
use mrs_pso::serial::SerialPso;
use mrs_pso::PsoConfig;
use mrs_runtime::LocalRuntime;
use std::sync::Arc;
use std::time::Instant;

fn main() -> Result<()> {
    let mut args = std::env::args().skip(1);
    let particles: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let outer: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20);
    let inner: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let config = PsoConfig::rosenbrock_250(particles, 42);
    println!(
        "Rosenbrock-250, {particles} particles in subswarms of 5, {outer}×{inner} iterations\n"
    );

    // Serial driver (the bypass implementation).
    let t0 = Instant::now();
    let mut serial = SerialPso::new(config.clone());
    let serial_history = serial.run(outer * inner);
    let serial_time = t0.elapsed();

    // Iterative MapReduce on the pool runtime, one island per map task,
    // `inner` iterations per task (Apiary granularity).
    let program = Arc::new(PsoProgram::new(config, inner));
    let mut rt = LocalRuntime::pool(program.clone(), workers);
    let t0 = Instant::now();
    let mr_history = {
        let mut job = Job::new(&mut rt);
        program.drive_islands(&mut job, outer)?
    };
    let mr_time = t0.elapsed();

    println!("{:>10} {:>12} {:>16} {:>16}", "iteration", "evals", "serial best", "mapreduce best");
    for rec in &mr_history {
        let serial_best = serial_history
            .iter()
            .rev()
            .find(|s| s.iteration <= rec.iteration)
            .map(|s| s.best_val)
            .unwrap_or(f64::NAN);
        println!(
            "{:>10} {:>12} {:>16.6e} {:>16.6e}",
            rec.iteration, rec.func_evals, serial_best, rec.best_val
        );
    }

    let metrics = rt.metrics();
    println!("\nserial:    {:.3} s total", serial_time.as_secs_f64());
    println!(
        "mapreduce: {:.3} s total, {:.1} ms per MapReduce iteration ({} tasks executed)",
        mr_time.as_secs_f64(),
        mr_time.as_secs_f64() * 1e3 / outer as f64,
        metrics.tasks_executed(),
    );
    println!("paper reference: ~0.3 s framework overhead per iteration on Mrs, ≥30 s on Hadoop");
    Ok(())
}
