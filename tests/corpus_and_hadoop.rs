//! End-to-end WordCount over the synthetic corpus: Mrs runtimes, the
//! Hadoop simulator, and the framework-independent reference must all
//! agree; the simulator's virtual timings must show the paper's structure
//! (startup dominated by file count, ~30 s job floor).

use corpus::tree::{directory_count, Layout};
use corpus::{Corpus, CorpusConfig};
use hadoop_sim::cluster::JobSpec;
use hadoop_sim::hdfs::InputProfile;
use hadoop_sim::{HadoopCluster, SimConfig};
use mrs::apps::wordcount::{decode_counts, documents_to_records, WordCount};
use mrs::prelude::*;
use mrs_runtime::LocalCluster;
use std::sync::Arc;

fn small_corpus(
    files: u64,
) -> (Vec<mrs_core::Record>, u64, std::collections::HashMap<String, u64>) {
    let corpus = Corpus::new(CorpusConfig {
        n_files: files,
        mean_tokens: 300,
        vocab: 5_000,
        ..CorpusConfig::default()
    });
    let docs: Vec<String> = (0..files).map(|f| corpus.document(f)).collect();
    let bytes = docs.iter().map(|d| d.len() as u64).sum();
    let reference = corpus::tokenizer::reference_counts(docs.iter().flat_map(|d| d.lines()));
    (documents_to_records(docs.iter().map(String::as_str)), bytes, reference)
}

#[test]
fn mrs_cluster_matches_reference_counts() {
    let (records, _, reference) = small_corpus(40);
    let mut cluster = LocalCluster::start(
        Arc::new(Simple(WordCount)),
        3,
        DataPlane::Direct,
        MasterConfig::default(),
    )
    .unwrap();
    let mut job = Job::new(&mut cluster);
    let out = job.map_reduce(records, 6, 4, true).unwrap();
    assert_eq!(decode_counts(&out).unwrap(), reference);
}

#[test]
fn hadoop_sim_matches_reference_counts() {
    let (records, bytes, reference) = small_corpus(40);
    let cluster = HadoopCluster::new(4, SimConfig::default()).unwrap();
    let program = Simple(WordCount);
    let report = cluster
        .run_job(&JobSpec {
            program: &program,
            map_func: 0,
            reduce_func: 0,
            combine: true,
            input: records,
            input_profile: InputProfile { files: 40, directories: 10, bytes },
            n_maps: 6,
            n_reduces: 4,
        })
        .unwrap();
    assert_eq!(decode_counts(&report.output).unwrap(), reference);
    // The paper's structural claim: even this small job pays tens of
    // seconds of fixed cost on Hadoop.
    assert!(report.total.as_secs_f64() > 18.0, "{:?}", report.total);
}

#[test]
fn nested_tree_staging_dominates_at_paper_scale() {
    // Paper numbers: full corpus 31,173 files → startup alone ≈ 9 min;
    // subset 8,316 files → preparation ≈ 1 min. Check the simulator's
    // input-scan model lands in those bands without running the data.
    let cfg = SimConfig::default();
    let full = hadoop_sim::hdfs::input_scan_time(
        &cfg,
        &InputProfile {
            files: 31_173,
            directories: directory_count(Layout::Nested, 31_173),
            bytes: 12_000_000_000,
        },
    );
    let subset = hadoop_sim::hdfs::input_scan_time(
        &cfg,
        &InputProfile {
            files: 8_316,
            directories: directory_count(Layout::Nested, 8_316),
            bytes: 3_000_000_000,
        },
    );
    let full_s = full.as_secs_f64();
    let subset_s = subset.as_secs_f64();
    assert!((300.0..900.0).contains(&full_s), "full scan {full_s}s");
    assert!((40.0..300.0).contains(&subset_s), "subset scan {subset_s}s");
    assert!(full_s > 3.0 * subset_s, "full must dwarf subset");
}

#[test]
fn flat_layout_is_much_cheaper_to_scan_than_nested() {
    let cfg = SimConfig::default();
    let files = 10_000;
    let nested = hadoop_sim::hdfs::input_scan_time(
        &cfg,
        &InputProfile {
            files,
            directories: directory_count(Layout::Nested, files),
            bytes: 1_000_000,
        },
    );
    let flat = hadoop_sim::hdfs::input_scan_time(
        &cfg,
        &InputProfile { files, directories: 1, bytes: 1_000_000 },
    );
    // Directory traversal adds real cost, but per-file ops dominate both;
    // nested must be strictly worse.
    assert!(nested > flat);
}

#[test]
fn corpus_is_reproducible_across_generators() {
    let a = Corpus::new(CorpusConfig { n_files: 10, ..CorpusConfig::default() });
    let b = Corpus::new(CorpusConfig { n_files: 10, ..CorpusConfig::default() });
    for f in 0..10 {
        assert_eq!(a.document(f), b.document(f));
    }
}
