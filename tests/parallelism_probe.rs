//! Probe: map tasks on distinct slaves must actually run concurrently.
use mrs::prelude::*;
use mrs_core::kv::encode_record;
use mrs_core::MapReduce;
use mrs_runtime::LocalCluster;
use std::sync::Arc;

struct Sleepy;
impl MapReduce for Sleepy {
    type K1 = u64;
    type V1 = u64;
    type K2 = u64;
    type V2 = u64;
    fn map(&self, k: u64, v: u64, emit: &mut dyn FnMut(u64, u64)) {
        std::thread::sleep(std::time::Duration::from_millis(100));
        emit(k, v);
    }
    fn reduce(&self, _k: &u64, vs: &mut dyn Iterator<Item = u64>, emit: &mut dyn FnMut(u64)) {
        emit(vs.sum());
    }
}

#[test]
fn eight_sleepy_maps_on_four_slaves_run_concurrently() {
    let mut cluster = LocalCluster::start(
        Arc::new(Simple(Sleepy)),
        4,
        DataPlane::Direct,
        MasterConfig::default(),
    )
    .unwrap();
    let mut job = Job::new(&mut cluster);
    let input: Vec<mrs_core::Record> = (0..8u64).map(|i| encode_record(&i, &i)).collect();
    let t0 = std::time::Instant::now();
    job.map_reduce(input, 8, 2, false).unwrap();
    let secs = t0.elapsed().as_secs_f64();
    // Serial would be >= 0.8 s; 4-way parallel is ~0.2 s + overhead. The
    // bound leaves headroom for sibling test binaries starving the
    // scheduler threads while staying strictly below any serial run.
    assert!(secs < 0.7, "maps did not run in parallel: {secs:.3}s");
}
