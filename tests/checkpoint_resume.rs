//! Checkpoint/resume of iterative jobs: because every Mrs program is
//! deterministic given its state (the §IV-A reproducibility guarantee), a
//! job saved to a store and resumed in a *fresh runtime* must continue the
//! exact trajectory of an uninterrupted run.

use mrs::prelude::*;
use mrs_fs::{MemFs, Store};
use mrs_pso::mapreduce::{PsoProgram, FUNC_PARTICLE};
use mrs_pso::{Objective, Particle, PsoConfig, Topology};
use mrs_runtime::LocalRuntime;
use std::sync::Arc;

fn config() -> PsoConfig {
    PsoConfig {
        objective: Objective::Rastrigin,
        dim: 6,
        n_particles: 9,
        topology: Topology::Ring { k: 1 },
        seed: 77,
    }
}

fn iterate(job: &mut Job, mut ds: DataId, parts: usize, iters: u64) -> DataId {
    for _ in 0..iters {
        let m = job.map_data(ds, FUNC_PARTICLE, parts, false).unwrap();
        ds = job.reduce_data(m, FUNC_PARTICLE).unwrap();
    }
    ds
}

fn swarm_of(job: &mut Job, ds: DataId) -> Vec<Particle> {
    PsoProgram::particles_of(&job.fetch_all(ds).unwrap()).unwrap()
}

#[test]
fn resume_from_checkpoint_continues_exact_trajectory() {
    let store = MemFs::new();

    // Uninterrupted: 20 iterations in one runtime.
    let unbroken = {
        let program = Arc::new(PsoProgram::new(config(), 1));
        let mut rt = LocalRuntime::pool(program.clone(), 3);
        let mut job = Job::new(&mut rt);
        let ds = job.local_data(program.initial_particles(), 3).unwrap();
        let last = iterate(&mut job, ds, 3, 20);
        swarm_of(&mut job, last)
    };

    // Interrupted: 8 iterations, checkpoint, new runtime, restore, 12 more.
    {
        let program = Arc::new(PsoProgram::new(config(), 1));
        let mut rt = LocalRuntime::pool(program.clone(), 3);
        let mut job = Job::new(&mut rt);
        let ds = job.local_data(program.initial_particles(), 3).unwrap();
        let mid = iterate(&mut job, ds, 3, 8);
        let saved = job.save(mid, &store, "pso/run1").unwrap();
        assert_eq!(saved, 9);
    } // runtime dropped: the "crash"

    let resumed = {
        let program = Arc::new(PsoProgram::new(config(), 1));
        let mut rt = LocalRuntime::pool(program, 5); // different worker count too
        let mut job = Job::new(&mut rt);
        let ds = job.restore(&store, "pso/run1", 5).unwrap();
        let last = iterate(&mut job, ds, 5, 12);
        swarm_of(&mut job, last)
    };

    assert_eq!(unbroken, resumed, "resumed trajectory diverged");
}

#[test]
fn save_and_restore_roundtrip_preserves_records() {
    let store = MemFs::new();
    let program = Arc::new(PsoProgram::new(config(), 1));
    let records = program.initial_particles();
    let mut rt = LocalRuntime::pool(program, 2);
    let mut job = Job::new(&mut rt);
    let ds = job.local_data(records.clone(), 2).unwrap();
    job.save(ds, &store, "raw").unwrap();
    let back = job.restore(&store, "raw", 2).unwrap();
    let mut a = job.fetch_all(back).unwrap();
    let mut b = records;
    a.sort();
    b.sort();
    assert_eq!(a, b);
}

#[test]
fn restore_of_missing_checkpoint_fails_cleanly() {
    let store = MemFs::new();
    let program = Arc::new(PsoProgram::new(config(), 1));
    let mut rt = LocalRuntime::pool(program, 2);
    let mut job = Job::new(&mut rt);
    assert!(job.restore(&store, "never-saved", 2).is_err());
}

#[test]
fn corrupt_checkpoint_is_rejected() {
    let store = MemFs::new();
    store.put("bad/checkpoint.mrsb", b"not a bucket file").unwrap();
    let program = Arc::new(PsoProgram::new(config(), 1));
    let mut rt = LocalRuntime::pool(program, 2);
    let mut job = Job::new(&mut rt);
    assert!(job.restore(&store, "bad", 2).is_err());
}
