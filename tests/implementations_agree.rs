//! The paper's central debugging discipline (§IV-A): "A program's
//! master/slave, serial, mock parallel, and bypass implementations should
//! all produce identical answers. Differences in behavior between any two
//! implementations, even in stochastic algorithms, indicate a bug."
//!
//! These tests enforce that property across every runtime in the
//! workspace, for both WordCount (data-parallel) and PSO (stochastic,
//! iterative).

use mrs::apps::wordcount::{decode_counts, lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_fs::MemFs;
use mrs_pso::mapreduce::{PsoProgram, FUNC_PARTICLE};
use mrs_pso::serial::SerialPso;
use mrs_pso::{Objective, Particle, PsoConfig, Topology};
use mrs_runtime::{LocalCluster, LocalRuntime};
use std::collections::HashMap;
use std::sync::Arc;

fn sample_lines() -> Vec<String> {
    (0..60).map(|i| format!("alpha w{} w{} beta w{}", i % 7, i % 11, i % 3)).collect()
}

fn wordcount_on(job: &mut Job, maps: usize, reduces: usize) -> HashMap<String, u64> {
    let lines = sample_lines();
    let input = lines_to_records(lines.iter().map(String::as_str));
    let out = job.map_reduce(input, maps, reduces, true).unwrap();
    decode_counts(&out).unwrap()
}

#[test]
fn wordcount_identical_across_all_five_runtimes() {
    let lines = sample_lines();
    let bypass = corpus::tokenizer::reference_counts(lines.iter().map(String::as_str));

    let serial = {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        wordcount_on(&mut Job::new(&mut rt), 1, 1)
    };
    let mock = {
        let mut rt =
            LocalRuntime::mock_parallel(Arc::new(Simple(WordCount)), Arc::new(MemFs::new()));
        wordcount_on(&mut Job::new(&mut rt), 4, 3)
    };
    let pool = {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 6);
        wordcount_on(&mut Job::new(&mut rt), 5, 4)
    };
    let direct = {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            3,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        wordcount_on(&mut Job::new(&mut cluster), 4, 3)
    };
    let shared = {
        let store: Arc<dyn mrs_fs::Store> = Arc::new(MemFs::new());
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            2,
            DataPlane::SharedFs(store),
            MasterConfig::default(),
        )
        .unwrap();
        wordcount_on(&mut Job::new(&mut cluster), 3, 2)
    };
    // Multi-slot slaves (capacity batching, worker pool, prefetch stage)
    // must not perturb the answer.
    let multislot = {
        let mut cluster = LocalCluster::start_with(
            Arc::new(Simple(WordCount)),
            2,
            DataPlane::Direct,
            MasterConfig::default(),
            SlaveOptions { slots: 4, ..SlaveOptions::default() },
        )
        .unwrap();
        wordcount_on(&mut Job::new(&mut cluster), 6, 3)
    };
    // The legacy sleep-and-poll control plane (the clusters above run the
    // event-driven default) must agree too: long-poll dispatch and
    // piggybacked completions change control timing, never the answer.
    let pollmode = {
        let cfg = MasterConfig { control: ControlMode::Poll, ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
        wordcount_on(&mut Job::new(&mut cluster), 4, 3)
    };

    // The shuffle codec must be invisible to the answer: always-compress
    // and never-compress clusters (the ones above run the size-threshold
    // default) bracket every framing path.
    let compress_on = {
        let cfg = MasterConfig { compress: CompressMode::On, ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
        wordcount_on(&mut Job::new(&mut cluster), 4, 3)
    };
    let compress_off = {
        let cfg = MasterConfig { compress: CompressMode::Off, ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
        wordcount_on(&mut Job::new(&mut cluster), 4, 3)
    };

    // Eager shuffle is on by default in every direct cluster above; the
    // off path (classic barrier-then-fetch) is the tentpole's oracle and
    // must agree byte for byte.
    let eager_off = {
        let cfg = MasterConfig { eager_shuffle: false, ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
        wordcount_on(&mut Job::new(&mut cluster), 4, 3)
    };

    // Speculative execution is on by default in every cluster above; the
    // non-speculative scheduler is its oracle and must agree exactly.
    let speculate_off = {
        let cfg = MasterConfig { speculate: SpeculateMode::Off, ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
        let out = wordcount_on(&mut Job::new(&mut cluster), 4, 3);
        assert_eq!(
            cluster.metrics().speculative_launches(),
            0,
            "speculate=off must never launch a backup"
        );
        out
    };

    assert_eq!(bypass, serial, "serial vs bypass");
    assert_eq!(serial, mock, "mock vs serial");
    assert_eq!(mock, pool, "pool vs mock");
    assert_eq!(pool, direct, "distributed-direct vs pool");
    assert_eq!(direct, shared, "distributed-sharedfs vs distributed-direct");
    assert_eq!(shared, multislot, "multi-slot cluster vs distributed-sharedfs");
    assert_eq!(multislot, pollmode, "poll-mode cluster vs long-poll cluster");
    assert_eq!(pollmode, compress_on, "compress-on cluster vs poll-mode cluster");
    assert_eq!(compress_on, compress_off, "compress-off cluster vs compress-on cluster");
    assert_eq!(compress_off, eager_off, "eager-off cluster vs compress-off cluster");
    assert_eq!(eager_off, speculate_off, "speculate-off cluster vs eager-off cluster");
}

/// Force an actual backup-vs-original race and check it is answer-neutral:
/// a hidden per-slave test hook delays the first attempt of one map task
/// far past the speculation cutoff, so the master launches a backup on the
/// other slave, the backup wins, and the delayed original is cancelled.
/// First-completion-wins arbitration must keep the output byte-identical
/// to the bypass count.
#[test]
fn forced_backup_race_preserves_the_answer() {
    let lines = sample_lines();
    let bypass = corpus::tokenizer::reference_counts(lines.iter().map(String::as_str));

    let mut cluster = LocalCluster::start(
        Arc::new(Simple(WordCount)),
        0,
        DataPlane::Direct,
        MasterConfig::default(),
    )
    .unwrap();
    // Dataset ids are deterministic per job: source = 0, map = 1. Delay
    // the first attempt of map task (1, 0) by 400ms on whichever slave
    // draws it; backup attempts (id >= 2) run at full speed.
    let straggly = SlaveOptions { slots: 2, test_delays: vec![(1, 0, 400)], ..Default::default() };
    cluster.add_slave_with(straggly.clone());
    cluster.add_slave_with(straggly);

    let raced = wordcount_on(&mut Job::new(&mut cluster), 8, 3);
    assert_eq!(raced, bypass, "forced-backup cluster vs bypass");
    let metrics = cluster.metrics();
    assert!(metrics.speculative_launches() >= 1, "the injected straggler never got a backup");
    assert!(metrics.speculative_wins() >= 1, "a full-speed backup should beat a 400ms sleeper");
    assert_eq!(
        metrics.speculative_launches(),
        metrics.speculative_wins() + metrics.speculative_losses(),
        "every speculative attempt must resolve as a win or a loss"
    );
}

#[test]
fn mixed_compression_slaves_interoperate() {
    // One slave frames and compresses every bucket, the other emits raw
    // MRSB1 bytes; consumers auto-detect per payload, so a mixed cluster
    // must still produce the exact answer (and the master's own source
    // splits add a third producer, the size-threshold default).
    let lines = sample_lines();
    let bypass = corpus::tokenizer::reference_counts(lines.iter().map(String::as_str));
    let cfg = MasterConfig { compress: CompressMode::On, ..MasterConfig::default() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), 1, DataPlane::Direct, cfg).unwrap();
    cluster.add_slave_with(SlaveOptions { compress: CompressMode::Off, ..SlaveOptions::default() });
    let mixed = wordcount_on(&mut Job::new(&mut cluster), 6, 4);
    assert_eq!(mixed, bypass, "mixed-compression cluster vs bypass");
}

/// The merge-reduce oracle on the plan that stresses it hardest: with no
/// combiner, map tasks emit full unaggregated runs, so reduce tasks see
/// many duplicate keys per run and the streaming k-way merge (default)
/// must group them exactly like the legacy concatenate-and-sort path
/// (`--mrs-merge=sort`). Any divergence — grouping, value order within a
/// key, output order — is a bug, so the comparison is on the raw decoded
/// counts across every plane.
#[test]
fn merge_oracle_wordcount_no_combiner_identical() {
    let lines = sample_lines();
    let input = lines_to_records(lines.iter().map(String::as_str));
    let bypass = corpus::tokenizer::reference_counts(lines.iter().map(String::as_str));

    let serial_merge = {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        let out = Job::new(&mut rt).map_reduce(input.clone(), 5, 4, false).unwrap();
        decode_counts(&out).unwrap()
    };
    let serial_sort = {
        let mut rt = SerialRuntime::new(Arc::new(Simple(WordCount)));
        rt.set_merge_mode(MergeMode::Sort);
        let out = Job::new(&mut rt).map_reduce(input.clone(), 5, 4, false).unwrap();
        decode_counts(&out).unwrap()
    };
    let pool_merge = {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 4);
        let out = Job::new(&mut rt).map_reduce(input.clone(), 5, 4, false).unwrap();
        decode_counts(&out).unwrap()
    };
    let pool_sort = {
        let mut rt = LocalRuntime::pool(Arc::new(Simple(WordCount)), 4);
        rt.set_merge_mode(MergeMode::Sort);
        let out = Job::new(&mut rt).map_reduce(input.clone(), 5, 4, false).unwrap();
        decode_counts(&out).unwrap()
    };
    let cluster_merge = {
        let mut cluster = LocalCluster::start(
            Arc::new(Simple(WordCount)),
            2,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        let out = Job::new(&mut cluster).map_reduce(input.clone(), 5, 4, false).unwrap();
        let counts = decode_counts(&out).unwrap();
        let m = cluster.metrics();
        assert!(m.merge_runs() > 0, "merge-mode cluster never recorded a merge run");
        assert_eq!(
            m.presorted_runs(),
            m.merge_runs(),
            "every map output must arrive as a presorted run"
        );
        counts
    };
    let cluster_sort = {
        let cfg = MasterConfig { merge: MergeMode::Sort, ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
        let out = Job::new(&mut cluster).map_reduce(input.clone(), 5, 4, false).unwrap();
        decode_counts(&out).unwrap()
    };

    assert_eq!(serial_merge, bypass, "serial merge vs bypass");
    assert_eq!(serial_sort, serial_merge, "serial sort-oracle vs merge");
    assert_eq!(pool_merge, serial_merge, "pool merge vs serial merge");
    assert_eq!(pool_sort, pool_merge, "pool sort-oracle vs merge");
    assert_eq!(cluster_merge, pool_merge, "cluster merge vs pool merge");
    assert_eq!(cluster_sort, cluster_merge, "cluster sort-oracle vs merge");
}

fn pso_config() -> PsoConfig {
    PsoConfig {
        objective: Objective::Rastrigin,
        dim: 8,
        n_particles: 10,
        topology: Topology::Ring { k: 1 },
        seed: 2024,
    }
}

fn pso_swarm_on(job: &mut Job, parts: usize, iters: u64) -> Vec<Particle> {
    let program = PsoProgram::new(pso_config(), 1);
    let mut ds = job.local_data(program.initial_particles(), parts).unwrap();
    for _ in 0..iters {
        let m = job.map_data(ds, FUNC_PARTICLE, parts, false).unwrap();
        ds = job.reduce_data(m, FUNC_PARTICLE).unwrap();
    }
    PsoProgram::particles_of(&job.fetch_all(ds).unwrap()).unwrap()
}

#[test]
fn stochastic_pso_bitwise_identical_across_runtimes() {
    let iters = 12;

    // Bypass: the plain serial loop.
    let mut bypass = SerialPso::new(pso_config());
    bypass.run(iters);
    let expected: Vec<Particle> = bypass.swarm().to_vec();

    let serial = {
        let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(pso_config(), 1)));
        pso_swarm_on(&mut Job::new(&mut rt), 1, iters)
    };
    let pool = {
        let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(pso_config(), 1)), 4);
        pso_swarm_on(&mut Job::new(&mut rt), 5, iters)
    };
    let cluster = {
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(pso_config(), 1)),
            3,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        pso_swarm_on(&mut Job::new(&mut cluster), 5, iters)
    };
    let multislot = {
        let mut cluster = LocalCluster::start_with(
            Arc::new(PsoProgram::new(pso_config(), 1)),
            2,
            DataPlane::Direct,
            MasterConfig::default(),
            SlaveOptions { slots: 4, ..SlaveOptions::default() },
        )
        .unwrap();
        pso_swarm_on(&mut Job::new(&mut cluster), 5, iters)
    };
    // A stochastic iterative job is the sharpest oracle for the control
    // plane: any reordering the long-poll/piggyback machinery leaked into
    // execution would diverge the trajectory bit-for-bit.
    let pollmode = {
        let cfg = MasterConfig { control: ControlMode::Poll, ..MasterConfig::default() };
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(pso_config(), 1)),
            2,
            DataPlane::Direct,
            cfg,
        )
        .unwrap();
        pso_swarm_on(&mut Job::new(&mut cluster), 5, iters)
    };
    // An iterative stochastic trajectory is equally sharp for the eager
    // shuffle plane: warm-fragment seeding must feed reduce tasks the
    // exact bytes (and bucket order) the cold path fetches.
    let eager_off = {
        let cfg = MasterConfig { eager_shuffle: false, ..MasterConfig::default() };
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(pso_config(), 1)),
            2,
            DataPlane::Direct,
            cfg,
        )
        .unwrap();
        pso_swarm_on(&mut Job::new(&mut cluster), 5, iters)
    };
    // The stochastic trajectory is the sharpest oracle for speculation
    // too: a backup attempt re-running a particle task with any hidden
    // state, or a loser's output leaking past the commit point, would
    // diverge the swarm bit-for-bit within an iteration or two.
    let speculate_off = {
        let cfg = MasterConfig { speculate: SpeculateMode::Off, ..MasterConfig::default() };
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(pso_config(), 1)),
            2,
            DataPlane::Direct,
            cfg,
        )
        .unwrap();
        pso_swarm_on(&mut Job::new(&mut cluster), 5, iters)
    };

    // The trajectory is just as sharp an oracle for reduce-input
    // assembly: the sort path must reproduce the default streaming
    // merge bit-for-bit across a 12-iteration stochastic chain.
    let merge_sort = {
        let cfg = MasterConfig { merge: MergeMode::Sort, ..MasterConfig::default() };
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(pso_config(), 1)),
            2,
            DataPlane::Direct,
            cfg,
        )
        .unwrap();
        pso_swarm_on(&mut Job::new(&mut cluster), 5, iters)
    };

    assert_eq!(serial, expected, "MapReduce-serial vs bypass");
    assert_eq!(pool, expected, "pool vs bypass");
    assert_eq!(cluster, expected, "cluster vs bypass");
    assert_eq!(multislot, expected, "multi-slot cluster vs bypass");
    assert_eq!(pollmode, expected, "poll-mode cluster vs bypass");
    assert_eq!(eager_off, expected, "eager-off cluster vs bypass");
    assert_eq!(speculate_off, expected, "speculate-off cluster vs bypass");
    assert_eq!(merge_sort, expected, "sort-oracle cluster vs bypass");
}

/// The fused-ReduceMap oracle: the same iterative island chain run
/// unfused (materialized reduce then map) and fused (one ReduceMap op per
/// interior round), across every plane, with lifetime GC both on and off
/// and under both control modes. Fusion and GC are perf transforms only —
/// any byte of divergence is a bug.
#[test]
fn fused_reducemap_identical_across_runtimes_and_gc_modes() {
    let cfg = PsoConfig {
        objective: Objective::Sphere,
        dim: 6,
        n_particles: 15,
        topology: Topology::Subswarms { size: 5 },
        seed: 7,
    };
    let iters = 8;
    let run = |job: &mut Job, fused: bool| {
        let program = PsoProgram::new(cfg.clone(), 4);
        program.run_islands(job, iters, fused).unwrap()
    };

    let serial_unfused = {
        let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(cfg.clone(), 4)));
        run(&mut Job::new(&mut rt), false)
    };
    let serial_fused = {
        let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(cfg.clone(), 4)));
        run(&mut Job::new(&mut rt), true)
    };
    let mock_fused = {
        let mut rt = LocalRuntime::mock_parallel(
            Arc::new(PsoProgram::new(cfg.clone(), 4)),
            Arc::new(MemFs::new()),
        );
        run(&mut Job::new(&mut rt), true)
    };
    let (pool_fused, pool_freed) = {
        let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(cfg.clone(), 4)), 5);
        let out = run(&mut Job::new(&mut rt), true);
        (out, rt.metrics().datasets_freed())
    };
    let pool_keepdata = {
        let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(cfg.clone(), 4)), 5);
        rt.set_keep_data(true);
        run(&mut Job::new(&mut rt), true)
    };
    let (cluster_fused, cluster_fused_ops, cluster_freed) = {
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(cfg.clone(), 4)),
            2,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        let out = run(&mut Job::new(&mut cluster), true);
        let m = cluster.metrics();
        (out, m.fused_ops(), m.datasets_freed())
    };
    let cluster_poll_keepdata = {
        let cfg_m =
            MasterConfig { control: ControlMode::Poll, keep_data: true, ..MasterConfig::default() };
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(cfg.clone(), 4)),
            2,
            DataPlane::Direct,
            cfg_m,
        )
        .unwrap();
        run(&mut Job::new(&mut cluster), true)
    };
    let cluster_sharedfs = {
        let store: Arc<dyn mrs_fs::Store> = Arc::new(MemFs::new());
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(cfg.clone(), 4)),
            2,
            DataPlane::SharedFs(store),
            MasterConfig::default(),
        )
        .unwrap();
        run(&mut Job::new(&mut cluster), true)
    };

    assert_eq!(serial_fused, serial_unfused, "serial fused vs unfused");
    assert_eq!(mock_fused, serial_unfused, "mock fused vs serial unfused");
    assert_eq!(pool_fused, serial_unfused, "pool fused vs serial unfused");
    assert_eq!(pool_keepdata, serial_unfused, "pool keep-data vs serial unfused");
    assert_eq!(cluster_fused, serial_unfused, "cluster fused vs serial unfused");
    assert_eq!(cluster_poll_keepdata, serial_unfused, "poll-mode keep-data cluster");
    assert_eq!(cluster_sharedfs, serial_unfused, "shared-fs cluster fused");
    // The machinery under test must actually have engaged.
    assert_eq!(cluster_fused_ops, iters - 1, "cluster should run every interior round fused");
    assert!(cluster_freed > 0, "cluster lifetime GC never freed a dataset");
    assert!(pool_freed > 0, "pool lifetime GC never freed a dataset");
}

#[test]
fn island_granularity_identical_serial_vs_pool() {
    let cfg = PsoConfig {
        objective: Objective::Sphere,
        dim: 6,
        n_particles: 15,
        topology: Topology::Subswarms { size: 5 },
        seed: 7,
    };
    let drive = |job: &mut Job| {
        let program = PsoProgram::new(cfg.clone(), 8);
        program.drive_islands(job, 10).unwrap()
    };
    let a = {
        let mut rt = SerialRuntime::new(Arc::new(PsoProgram::new(cfg.clone(), 8)));
        drive(&mut Job::new(&mut rt))
    };
    let b = {
        let mut rt = LocalRuntime::pool(Arc::new(PsoProgram::new(cfg.clone(), 8)), 5);
        drive(&mut Job::new(&mut rt))
    };
    let c = {
        let mut cluster = LocalCluster::start(
            Arc::new(PsoProgram::new(cfg.clone(), 8)),
            2,
            DataPlane::Direct,
            MasterConfig::default(),
        )
        .unwrap();
        drive(&mut Job::new(&mut cluster))
    };
    assert_eq!(a, b, "pool vs serial");
    assert_eq!(b, c, "cluster vs pool");
}
