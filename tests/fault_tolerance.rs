//! Fault-tolerance behaviour of the master/slave implementation: slave
//! crashes, storage hiccups, and poisoned tasks.

use mrs::apps::wordcount::{decode_counts, lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_fs::MemFs;
use mrs_runtime::LocalCluster;
use std::sync::Arc;
use std::time::Duration;

fn big_input() -> Vec<mrs_core::Record> {
    let lines: Vec<String> =
        (0..600).map(|i| format!("common w{} w{} w{}", i % 13, i % 29, i % 7)).collect();
    lines_to_records(lines.iter().map(String::as_str))
}

fn quick_sweep_config() -> MasterConfig {
    MasterConfig { slave_timeout: Duration::from_millis(150), ..MasterConfig::default() }
}

#[test]
fn killing_one_slave_mid_job_preserves_the_answer() {
    let mut cluster = LocalCluster::start(
        Arc::new(Simple(WordCount)),
        4,
        DataPlane::Direct,
        quick_sweep_config(),
    )
    .unwrap();

    let reduced = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(big_input(), 24).unwrap();
        let mapped = job.map_data(src, 0, 8, true).unwrap();
        job.reduce_data(mapped, 0).unwrap()
    };
    cluster.kill_slave(1);
    let out = {
        let mut job = Job::new(&mut cluster);
        job.fetch_all(reduced).unwrap()
    };
    let counts = decode_counts(&out).unwrap();
    assert_eq!(counts["common"], 600);
}

/// Producer death mid-overlap: slaves eagerly fetch map-output fragments
/// while the map phase is still running; then a slave that produced some
/// of those outputs dies. The master re-executes its map tasks on a
/// surviving slave, whose outputs get fresh URLs (a new `s{slave}/`
/// prefix) — so the warm fragments keyed by the dead slave's URLs are
/// simply never consumed, and the residual fetch at reduce time pulls the
/// re-executed outputs. The answer must be exact in every interleaving:
/// the kill may land mid-map, mid-reduce, or after completion depending
/// on build and scheduling, so keep-data stays on to make recovery
/// possible from any of them (the eager-invalidation path under test
/// needs the mid-flight interleavings, which the short sleep makes the
/// common case).
#[test]
fn producer_death_mid_overlap_invalidates_eager_fragments() {
    let cfg = MasterConfig { keep_data: true, ..quick_sweep_config() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), 3, DataPlane::Direct, cfg).unwrap();
    let reduced = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(big_input(), 24).unwrap();
        // No combiner: every map output record crosses the shuffle, so
        // eager fetches move real data before the kill lands.
        let mapped = job.map_data(src, 0, 8, false).unwrap();
        job.reduce_data(mapped, 0).unwrap()
    };
    // Let some maps finish and their fragments get eagerly fetched, then
    // kill a slave that (very likely) produced some of them.
    std::thread::sleep(Duration::from_millis(3));
    cluster.kill_slave(1);
    let out = {
        let mut job = Job::new(&mut cluster);
        job.fetch_all(reduced).unwrap()
    };
    let counts = decode_counts(&out).unwrap();
    assert_eq!(counts["common"], 600);
    assert_eq!(counts.values().sum::<u64>(), 2400, "one count per input token");
    assert!(
        cluster.metrics().eager_fragments() > 0,
        "eager shuffle should have moved fragments before the barrier"
    );
}

/// Producer re-execution racing the background pre-merge: with 24 map
/// tasks feeding 8 partitions, surviving slaves have plenty of contiguous
/// warm fragments to pre-merge while maps run. Killing a producer
/// mid-flight re-executes its tasks under fresh `s{slave}/` URLs, so any
/// merged run covering a dead fragment no longer matches its reduce
/// task's input list — the consumption check must drop it whole and fall
/// back to cold fetches. The answer must be exact in every interleaving,
/// whether the kill lands before, during, or after a pre-merge.
#[test]
fn producer_reexecution_mid_premerge_preserves_the_answer() {
    let cfg = MasterConfig { keep_data: true, ..quick_sweep_config() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), 3, DataPlane::Direct, cfg).unwrap();
    let reduced = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(big_input(), 24).unwrap();
        // No combiner: map outputs stay large, so eager fetches and the
        // pre-merge both move real data before the kill lands.
        let mapped = job.map_data(src, 0, 8, false).unwrap();
        job.reduce_data(mapped, 0).unwrap()
    };
    std::thread::sleep(Duration::from_millis(5));
    cluster.kill_slave(1);
    let out = {
        let mut job = Job::new(&mut cluster);
        job.fetch_all(reduced).unwrap()
    };
    let counts = decode_counts(&out).unwrap();
    assert_eq!(counts["common"], 600);
    assert_eq!(counts.values().sum::<u64>(), 2400, "one count per input token");
    let m = cluster.metrics();
    assert!(m.merge_runs() > 0, "reduce tasks should consume merge runs");
    assert_eq!(
        m.presorted_runs(),
        m.merge_runs(),
        "every run — fresh, re-executed, or pre-merged — arrives sorted"
    );
}

#[test]
fn killing_all_but_one_slave_still_completes() {
    let mut cluster = LocalCluster::start(
        Arc::new(Simple(WordCount)),
        3,
        DataPlane::Direct,
        quick_sweep_config(),
    )
    .unwrap();
    let reduced = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(big_input(), 12).unwrap();
        let mapped = job.map_data(src, 0, 4, true).unwrap();
        job.reduce_data(mapped, 0).unwrap()
    };
    cluster.kill_slave(0);
    cluster.kill_slave(2);
    let out = {
        let mut job = Job::new(&mut cluster);
        job.fetch_all(reduced).unwrap()
    };
    assert_eq!(decode_counts(&out).unwrap()["common"], 600);
}

/// Kill the slave that won a speculative race *after* its completion was
/// committed. The winner's published outputs die with it on the direct
/// plane, so the master must re-queue the task under a fresh attempt id
/// and recompute — trusting neither the dead winner's URLs nor a stale
/// report from the cancelled loser.
#[test]
fn winners_slave_dying_after_commit_recomputes_the_task() {
    let cfg = MasterConfig { keep_data: true, ..quick_sweep_config() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), 0, DataPlane::Direct, cfg).unwrap();
    // Dataset ids are deterministic per job: source = 0, map = 1. The
    // first attempt of map task (1, 0) sleeps 400ms on whichever slave
    // draws it, so the backup attempt on the other slave commits first.
    let straggly = SlaveOptions { slots: 2, test_delays: vec![(1, 0, 400)], ..Default::default() };
    cluster.add_slave_with(straggly.clone());
    cluster.add_slave_with(straggly);

    let reduced = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(big_input(), 8).unwrap();
        let mapped = job.map_data(src, 0, 4, false).unwrap();
        job.reduce_data(mapped, 0).unwrap()
    };
    // Wait for the backup's completion to be committed.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while cluster.metrics().speculative_wins() == 0 {
        assert!(std::time::Instant::now() < deadline, "speculative backup never won");
        std::thread::sleep(Duration::from_millis(5));
    }
    // The winner is one of the two original slaves; kill them both, with
    // a replacement arriving first so the job is never slave-less.
    cluster.add_slave();
    cluster.kill_slave(0);
    cluster.kill_slave(1);
    let out = {
        let mut job = Job::new(&mut cluster);
        job.fetch_all(reduced).unwrap()
    };
    let counts = decode_counts(&out).unwrap();
    assert_eq!(counts["common"], 600);
    assert_eq!(counts.values().sum::<u64>(), 2400, "one count per input token");
    assert!(cluster.metrics().speculative_wins() >= 1);
}

#[test]
fn transient_shared_fs_failures_are_retried() {
    let store = MemFs::new();
    let shared: Arc<dyn mrs_fs::Store> = Arc::new(store.clone());
    let mut cluster = LocalCluster::start(
        Arc::new(Simple(WordCount)),
        2,
        DataPlane::SharedFs(shared),
        MasterConfig::default(),
    )
    .unwrap();
    let out = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(big_input(), 8).unwrap();
        // Break the next few storage operations: some task attempts will
        // fail and must be re-queued, not fail the job.
        store.fail_next(3);
        let mapped = job.map_data(src, 0, 4, true).unwrap();
        let reduced = job.reduce_data(mapped, 0).unwrap();
        job.fetch_all(reduced).unwrap()
    };
    assert_eq!(decode_counts(&out).unwrap()["common"], 600);
    assert!(cluster.metrics().tasks_retried() > 0, "expected at least one retry");
}

#[test]
fn poisoned_task_fails_the_job_after_attempt_cap() {
    // A program whose map always fails on decode: give it garbage records.
    let cfg = MasterConfig { max_attempts: 2, ..MasterConfig::default() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
    let mut job = Job::new(&mut cluster);
    let src = job.local_data(vec![(vec![1, 2], vec![3])], 1).unwrap();
    let mapped = job.map_data(src, 0, 1, false).unwrap();
    let err = job.wait(mapped).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("failed"), "{msg}");
}

#[test]
fn job_submitted_before_any_slave_completes_when_one_arrives() {
    let mut cluster = LocalCluster::start(
        Arc::new(Simple(WordCount)),
        0,
        DataPlane::Direct,
        MasterConfig::default(),
    )
    .unwrap();
    let reduced = {
        let mut job = Job::new(&mut cluster);
        let src = job.local_data(big_input(), 4).unwrap();
        let mapped = job.map_data(src, 0, 2, false).unwrap();
        job.reduce_data(mapped, 0).unwrap()
    };
    cluster.add_slave();
    let out = {
        let mut job = Job::new(&mut cluster);
        job.fetch_all(reduced).unwrap()
    };
    assert_eq!(decode_counts(&out).unwrap()["common"], 600);
}
