//! The event-driven control plane must be a pure latency/RPC-count
//! feature: long-poll dispatch and piggybacked completions change *when*
//! control messages flow, never the answer. These tests pin the RPC
//! economics — an iteration's control traffic scales with the number of
//! slaves, not the number of tasks — and the behavioural switches of
//! `--mrs-control`.

use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_pso::mapreduce::{PsoProgram, FUNC_PARTICLE};
use mrs_pso::{Objective, PsoConfig, Topology};
use std::sync::Arc;

fn pso_config() -> PsoConfig {
    PsoConfig {
        objective: Objective::Sphere,
        dim: 4,
        n_particles: 12,
        topology: Topology::Ring { k: 1 },
        seed: 11,
    }
}

/// Run an iterative tiny-task PSO job under the given control mode and
/// return (sorted output bytes, control RPCs served, metrics).
fn run_pso(control: ControlMode, iters: u64, parts: usize) -> (Vec<Record>, u64, u64) {
    let cfg = MasterConfig { control, ..MasterConfig::default() };
    let mut cluster = LocalCluster::start_with(
        Arc::new(PsoProgram::new(pso_config(), 1)),
        2,
        DataPlane::Direct,
        cfg,
        SlaveOptions { slots: 2, ..SlaveOptions::default() },
    )
    .unwrap();
    let mut out = {
        let mut job = Job::new(&mut cluster);
        let program = PsoProgram::new(pso_config(), 1);
        let mut ds = job.local_data(program.initial_particles(), parts).unwrap();
        for _ in 0..iters {
            let m = job.map_data(ds, FUNC_PARTICLE, parts, false).unwrap();
            ds = job.reduce_data(m, FUNC_PARTICLE).unwrap();
        }
        job.fetch_all(ds).unwrap()
    };
    out.sort();
    let rpcs = cluster.control_requests();
    let m = cluster.metrics();
    // Fold the two counters the smoke test needs into one tuple slot each.
    let parks = m.longpoll_parks();
    let piggybacked = m.piggybacked_reports();
    assert!(
        matches!(control, ControlMode::LongPoll) || parks == 0,
        "poll mode must never park (got {parks})"
    );
    (out, rpcs, if matches!(control, ControlMode::LongPoll) { piggybacked } else { parks })
}

/// Piggybacking makes completions free: the bulk of task reports must
/// ride on `get_tasks` polls instead of costing standalone RPCs, so the
/// per-iteration control traffic is O(slaves), not O(tasks).
#[test]
fn piggybacking_bounds_control_rpcs_by_slaves_not_tasks() {
    let iters = 10;
    let parts = 6;
    let (_, rpcs, piggybacked) = run_pso(ControlMode::LongPoll, iters, parts);
    let tasks = iters * (parts as u64 + 1); // per iteration: `parts` maps + 1 reduce batch
    assert!(piggybacked > 0, "expected piggybacked completion reports");
    assert!(
        piggybacked >= tasks / 2,
        "most completions should ride polls: {piggybacked} piggybacked of {tasks} tasks"
    );
    // In poll mode every task costs its own `task_done` on top of the
    // dispatch polls, so the control RPC count has a 2-per-task floor.
    // Event-driven mode must beat that floor.
    assert!(
        rpcs < 2 * tasks,
        "control RPCs must undercut the poll-mode floor: {rpcs} RPCs for {tasks} tasks"
    );
}

/// The same job under both control planes: the event-driven plane must
/// spend strictly fewer control RPCs, park at least once, and produce a
/// byte-identical answer.
#[test]
fn longpoll_spends_fewer_rpcs_than_poll_for_identical_output() {
    let (out_long, rpcs_long, piggybacked) = run_pso(ControlMode::LongPoll, 8, 4);
    let (out_poll, rpcs_poll, _) = run_pso(ControlMode::Poll, 8, 4);
    assert_eq!(out_long, out_poll, "control mode must never change the answer");
    assert!(piggybacked > 0, "long-poll run should piggyback completions");
    assert!(
        rpcs_long < rpcs_poll,
        "event-driven control plane must reduce RPC count: longpoll={rpcs_long} poll={rpcs_poll}"
    );
}

/// An idle cluster under long-poll parks instead of burning empty polls:
/// with no work queued, a waiting slave's requests are held server-side.
#[test]
fn idle_slaves_park_instead_of_polling() {
    let cluster = LocalCluster::start(
        Arc::new(Simple(WordCount)),
        1,
        DataPlane::Direct,
        MasterConfig::default(),
    )
    .unwrap();
    // Give the slave time to sign in, drain its first Wait, and park.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    while cluster.metrics().longpoll_parks() == 0 {
        assert!(std::time::Instant::now() < deadline, "slave never parked on an idle master");
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let parks_settled = cluster.metrics().longpoll_parks();
    let rpcs_settled = cluster.control_requests();
    // While parked, a long-poll request spans the whole wait: RPC volume
    // over the next stretch stays far below what 2 ms poll loops would
    // produce (a parked request is at most ~2 per park window).
    std::thread::sleep(std::time::Duration::from_millis(300));
    let new_rpcs = cluster.control_requests() - rpcs_settled;
    assert!(
        new_rpcs <= 20,
        "an idle long-poll slave must not busy-poll: {new_rpcs} RPCs in 300ms \
         (parks at settle: {parks_settled})"
    );
}

/// WordCount through both control planes end-to-end (map + combine +
/// reduce over real sockets) stays byte-identical.
#[test]
fn wordcount_identical_across_control_modes() {
    let lines: Vec<String> =
        (0..90).map(|i| format!("omega w{} shared w{} w{}", i % 7, i % 11, i % 3)).collect();
    let run = |control: ControlMode| {
        let cfg = MasterConfig { control, ..MasterConfig::default() };
        let mut cluster =
            LocalCluster::start(Arc::new(Simple(WordCount)), 2, DataPlane::Direct, cfg).unwrap();
        let mut job = Job::new(&mut cluster);
        let input = lines_to_records(lines.iter().map(String::as_str));
        let mut out = job.map_reduce(input, 6, 3, true).unwrap();
        out.sort();
        out
    };
    assert_eq!(
        run(ControlMode::LongPoll),
        run(ControlMode::Poll),
        "WordCount output must not depend on the control plane"
    );
}
