//! Iterative-MapReduce behaviour on the real cluster: operation
//! pipelining, task→slave affinity across iterations, and the π tiers.

use mrs::apps::pi::{estimate_from, slabs, Kernel, PiEstimator};
use mrs::apps::wordcount::{decode_counts, lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_pso::mapreduce::PsoProgram;
use mrs_pso::{Objective, PsoConfig, Topology};
use mrs_runtime::LocalCluster;
use std::sync::Arc;

#[test]
fn affinity_keeps_iterative_tasks_on_their_slaves() {
    let cfg = PsoConfig {
        objective: Objective::Sphere,
        dim: 4,
        n_particles: 8,
        topology: Topology::Subswarms { size: 2 },
        seed: 5,
    };
    let program = Arc::new(PsoProgram::new(cfg, 3));
    let mut cluster =
        LocalCluster::start(program.clone(), 4, DataPlane::Direct, MasterConfig::default())
            .unwrap();
    {
        let mut job = Job::new(&mut cluster);
        program.drive_islands(&mut job, 12).unwrap();
    }
    let m = cluster.metrics();
    let hits = m.affinity_hits();
    let misses = m.affinity_misses();
    assert!(hits > 0, "no affinity hits at all ({hits}/{misses})");
    // With 4 islands on 4 slaves over 12 iterations, the steady state
    // should be strongly affine.
    assert!(
        hits as f64 / (hits + misses).max(1) as f64 > 0.5,
        "affinity rate too low: {hits} hits / {misses} misses"
    );
}

#[test]
fn affinity_off_still_computes_correctly() {
    let cfg = MasterConfig { use_affinity: false, ..MasterConfig::default() };
    let mut cluster =
        LocalCluster::start(Arc::new(Simple(WordCount)), 3, DataPlane::Direct, cfg).unwrap();
    let lines: Vec<String> = (0..50).map(|i| format!("x y{}", i % 5)).collect();
    let out = {
        let mut job = Job::new(&mut cluster);
        job.map_reduce(lines_to_records(lines.iter().map(String::as_str)), 5, 3, true).unwrap()
    };
    assert_eq!(decode_counts(&out).unwrap()["x"], 50);
    let m = cluster.metrics();
    assert_eq!(m.affinity_hits() + m.affinity_misses(), 0, "affinity disabled");
}

#[test]
fn queued_iterations_pipeline_without_intermediate_waits() {
    // Queue 6 chained map/reduce rounds up-front on a live cluster, then
    // wait only on the last — every intermediate op must complete.
    let cfg = PsoConfig {
        objective: Objective::Sphere,
        dim: 4,
        n_particles: 6,
        topology: Topology::Subswarms { size: 3 },
        seed: 11,
    };
    let program = Arc::new(PsoProgram::new(cfg, 2));
    let mut cluster =
        LocalCluster::start(program.clone(), 2, DataPlane::Direct, MasterConfig::default())
            .unwrap();
    let mut job = Job::new(&mut cluster);
    let mut ds = job.local_data(program.initial_islands(), 2).unwrap();
    for _ in 0..6 {
        let m = job.map_data(ds, mrs_pso::mapreduce::FUNC_ISLAND, 2, false).unwrap();
        ds = job.reduce_data(m, mrs_pso::mapreduce::FUNC_ISLAND).unwrap();
    }
    let records = job.fetch_all(ds).unwrap();
    let best = PsoProgram::best_of_islands(&records).unwrap();
    assert!(best.is_finite());
}

#[test]
fn pi_on_the_cluster_matches_pool_and_is_accurate() {
    let samples = 100_000u64;
    let pool_pi = {
        let program = Arc::new(Simple(PiEstimator { kernel: Kernel::Native }));
        let mut rt = mrs_runtime::LocalRuntime::pool(program, 4);
        let mut job = Job::new(&mut rt);
        let out = job.map_reduce(slabs(samples, 8), 8, 1, false).unwrap();
        estimate_from(&out).unwrap()
    };
    let cluster_pi = {
        let program = Arc::new(Simple(PiEstimator { kernel: Kernel::Native }));
        let mut cluster =
            LocalCluster::start(program, 3, DataPlane::Direct, MasterConfig::default()).unwrap();
        let mut job = Job::new(&mut cluster);
        let out = job.map_reduce(slabs(samples, 8), 8, 1, false).unwrap();
        estimate_from(&out).unwrap()
    };
    assert_eq!(pool_pi, cluster_pi, "runtimes must agree exactly");
    assert!((cluster_pi - std::f64::consts::PI).abs() < 1e-2, "pi = {cluster_pi}");
}

#[test]
fn interpreted_tier_runs_distributed() {
    // The slowpy VM kernel inside real cluster map tasks.
    let program = Arc::new(Simple(PiEstimator { kernel: Kernel::Bytecode }));
    let mut cluster =
        LocalCluster::start(program, 2, DataPlane::Direct, MasterConfig::default()).unwrap();
    let mut job = Job::new(&mut cluster);
    let out = job.map_reduce(slabs(2_000, 4), 4, 1, false).unwrap();
    let pi = estimate_from(&out).unwrap();
    assert_eq!(pi, {
        // must equal the native result bit-for-bit
        let inside = mrs::apps::pi::native_count(0, 2_000);
        4.0 * inside as f64 / 2_000.0
    });
}
