//! Multi-slot slaves must be a pure throughput feature: the same job on
//! the same cluster shape must produce byte-identical output whether each
//! slave runs one task at a time or four concurrently. This is the
//! paper's implementations-agree discipline applied to the capacity
//! scheduler — concurrency inside a slave (worker pool, prefetch stage,
//! batched dispatch) must never leak into the answer.

use mrs::apps::wordcount::{lines_to_records, WordCount};
use mrs::prelude::*;
use mrs_pso::mapreduce::{PsoProgram, FUNC_PARTICLE};
use mrs_pso::{Objective, PsoConfig, Topology};
use std::sync::Arc;

fn cluster_with_slots(program: Arc<dyn Program>, slots: usize) -> LocalCluster {
    LocalCluster::start_with(
        program,
        1,
        DataPlane::Direct,
        MasterConfig::default(),
        SlaveOptions { slots, ..SlaveOptions::default() },
    )
    .unwrap()
}

/// Sorted raw records: byte-level equality, not just decoded equality.
fn sorted_bytes(mut records: Vec<Record>) -> Vec<Record> {
    records.sort();
    records
}

#[test]
fn wordcount_output_identical_one_slot_vs_four_slots() {
    let lines: Vec<String> =
        (0..80).map(|i| format!("zeta w{} common w{} w{}", i % 5, i % 13, i % 4)).collect();
    let run = |slots: usize| {
        let mut cluster = cluster_with_slots(Arc::new(Simple(WordCount)), slots);
        let mut job = Job::new(&mut cluster);
        let input = lines_to_records(lines.iter().map(String::as_str));
        sorted_bytes(job.map_reduce(input, 8, 4, true).unwrap())
    };
    assert_eq!(run(1), run(4), "WordCount output must not depend on slot count");
}

/// The control plane crossed with slot count: a single-slot poll-mode
/// cluster and a four-slot long-poll cluster must still agree byte for
/// byte — neither concurrency inside a slave nor the event-driven
/// dispatch machinery may leak into the answer.
#[test]
fn wordcount_output_identical_across_control_modes_and_slots() {
    let lines: Vec<String> =
        (0..70).map(|i| format!("kappa w{} common w{} w{}", i % 6, i % 11, i % 5)).collect();
    let run = |slots: usize, control: ControlMode| {
        let cfg = MasterConfig { control, ..MasterConfig::default() };
        let mut cluster = LocalCluster::start_with(
            Arc::new(Simple(WordCount)),
            1,
            DataPlane::Direct,
            cfg,
            SlaveOptions { slots, ..SlaveOptions::default() },
        )
        .unwrap();
        let mut job = Job::new(&mut cluster);
        let input = lines_to_records(lines.iter().map(String::as_str));
        sorted_bytes(job.map_reduce(input, 8, 4, true).unwrap())
    };
    let baseline = run(1, ControlMode::Poll);
    assert_eq!(baseline, run(4, ControlMode::Poll), "poll mode must scale cleanly");
    assert_eq!(baseline, run(1, ControlMode::LongPoll), "long-poll must not change the answer");
    assert_eq!(baseline, run(4, ControlMode::LongPoll), "long-poll x multislot must agree");
}

#[test]
fn pso_trajectory_identical_one_slot_vs_four_slots() {
    let cfg = PsoConfig {
        objective: Objective::Rastrigin,
        dim: 6,
        n_particles: 12,
        topology: Topology::Ring { k: 1 },
        seed: 99,
    };
    let run = |slots: usize| {
        let mut cluster = cluster_with_slots(Arc::new(PsoProgram::new(cfg.clone(), 1)), slots);
        let mut job = Job::new(&mut cluster);
        let program = PsoProgram::new(cfg.clone(), 1);
        let mut ds = job.local_data(program.initial_particles(), 4).unwrap();
        for _ in 0..8 {
            let m = job.map_data(ds, FUNC_PARTICLE, 4, false).unwrap();
            ds = job.reduce_data(m, FUNC_PARTICLE).unwrap();
        }
        sorted_bytes(job.fetch_all(ds).unwrap())
    };
    assert_eq!(run(1), run(4), "PSO trajectory must not depend on slot count");
}
